package bytecode

import (
	"math"

	"repro/internal/coverage"
	"repro/internal/lang"
	"repro/internal/vm"
)

// mframe is one pooled call frame: the executing function, where its
// slots start in the shared slot stack, and where to resume in the
// caller. cfs caches the caller's frame size so a return restores
// base/fsize without touching the function table (base - cfs is the
// caller's base). The call-site position for crash stacks is not
// stored — it is recovered cold as Program.pos[retPC-1].
type mframe struct {
	fn    int32
	base  int32
	retPC int32
	dst   int32
	cfs   int32
}

// Machine executes a compiled Program. All execution state — slot
// stack, call frames, heap arrays, comparison and output buffers —
// is pooled and reset between runs, so a warmed-up machine performs
// zero allocations per execution. A machine is single-threaded; share
// the Program, not the Machine.
//
// Results reference the machine's pooled buffers: Result.Output and
// Result.Cmps are valid only until the next Run. Callers that keep
// them across executions must copy.
type Machine struct {
	p        *Program
	m        *coverage.Map
	lim      vm.Limits
	injectAt int64

	// slots is the shared slot stack; frames carve [base, base+size).
	slots  []int64
	frames []mframe
	// heap maps handles (1-based) to arrays; the arrays themselves are
	// carved from arena, which is bump-allocated and reset per run.
	heap   [][]int64
	arena  []int64
	arenaN int
	cells  int64
	output []int64
	cmps   []vm.CmpObs
	// regs is the Ball-Larus path register stack (ProbePath).
	regs []uint64
	// hist is the n-gram block window (ProbeNGram).
	hist    []uint32
	histPos int
	// pah/pan are the PathAFL rolling segment hash and length.
	pah uint64
	pan int
	// elide, when non-nil, is the consumed-cell mask of the
	// coverage-guided tracing engine: dynamic-index probes (path record,
	// pathafl segment flush, n-gram hash) skip the map write when their
	// cell is fully consumed, the record-side analogue of the static
	// opProbeAdd patching. Everything else about the probe — path
	// register updates, segment hash state, the n-gram window — still
	// runs, so execution state stays identical to the pristine machine.
	elide *coverage.Bitset
}

// NewMachine builds an execution machine over p, writing coverage to m
// under the given limits.
func NewMachine(p *Program, m *coverage.Map, lim vm.Limits) *Machine {
	mc := &Machine{p: p, m: m, lim: lim, injectAt: math.MaxInt64}
	if lim.InjectPanicAtStep > 0 {
		mc.injectAt = lim.InjectPanicAtStep
	}
	if p.spec.Kind == ProbeNGram {
		n := p.spec.NGram
		if n <= 0 {
			n = 1
		}
		mc.hist = make([]uint32, n)
	}
	return mc
}

// Program returns the compiled program the machine executes.
func (mc *Machine) Program() *Program { return mc.p }

// SetElide installs (or removes, with nil) the consumed-cell mask
// consulted by dynamic-index probes. The mask is read during Run, never
// written; the caller may update its contents between runs.
func (mc *Machine) SetElide(bs *coverage.Bitset) { mc.elide = bs }

// probeDyn is the dynamic-index map write behind record, paFlush, and
// the n-gram probe: with a consumed-cell mask installed, writes to
// fully consumed cells are skipped (they can never produce novelty, so
// skipping them is coverage-preserving).
func (mc *Machine) probeDyn(idx uint32) {
	if mc.elide != nil && mc.elide.Has(idx) {
		return
	}
	mc.m.Add(idx)
}

func (mc *Machine) reset() {
	mc.frames = mc.frames[:0]
	mc.heap = mc.heap[:0]
	mc.arenaN = 0
	mc.cells = 0
	mc.output = mc.output[:0]
	mc.cmps = mc.cmps[:0]
	mc.regs = mc.regs[:0]
	if mc.hist != nil {
		clear(mc.hist)
		mc.histPos = 0
	}
	mc.pah, mc.pan = 0, 0
}

// arenaAlloc carves n cells from the arena, growing it when exhausted.
// Arrays handed out earlier keep the old arena block alive, so growth
// mid-run is safe; the contents are NOT cleared (callers overwrite or
// clear as their semantics require).
func (mc *Machine) arenaAlloc(n int) []int64 {
	if mc.arenaN+n > len(mc.arena) {
		sz := len(mc.arena) * 2
		if sz < n {
			sz = n
		}
		if sz < 4096 {
			sz = 4096
		}
		mc.arena = make([]int64, sz)
		mc.arenaN = 0
	}
	s := mc.arena[mc.arenaN : mc.arenaN+n : mc.arenaN+n]
	mc.arenaN += n
	return s
}

func (mc *Machine) newArray(cells []int64) int64 {
	mc.heap = append(mc.heap, cells)
	mc.cells += int64(len(cells))
	return int64(len(mc.heap))
}

func (mc *Machine) growSlots(n int) {
	sz := len(mc.slots) * 2
	if sz < n {
		sz = n
	}
	if sz < 256 {
		sz = 256
	}
	ns := make([]int64, sz)
	copy(ns, mc.slots)
	mc.slots = ns
}

// crash builds a report with the current call stack, mirroring the
// interpreter's report construction field for field.
func (mc *Machine) crash(kind vm.CrashKind, pos lang.Pos, msg string) *vm.Crash {
	c := &vm.Crash{Kind: kind, Msg: msg, Pos: pos}
	if n := len(mc.frames); n > 0 {
		c.Func = mc.p.fns[mc.frames[n-1].fn].name
		c.Stack = append(c.Stack, vm.Frame{Func: c.Func, Pos: pos})
		for i := n - 2; i >= 0; i-- {
			callPos := mc.p.pos[mc.frames[i+1].retPC-1]
			c.Stack = append(c.Stack, vm.Frame{Func: mc.p.fns[mc.frames[i].fn].name, Pos: callPos})
		}
	}
	return c
}

func (mc *Machine) arrayAt(h int64, pos lang.Pos) ([]int64, *vm.Crash) {
	if h == 0 {
		return nil, mc.crash(vm.KindNullDeref, pos, "null array handle")
	}
	if h < 0 || h > int64(len(mc.heap)) {
		return nil, mc.crash(vm.KindWildPointer, pos, "invalid array handle")
	}
	return mc.heap[h-1], nil
}

// record is the path-termination map update (PathTracer.record).
func (mc *Machine) record(salt uint32, pathID uint64) {
	var idx uint32
	if mc.p.spec.MixHash {
		idx = uint32(splitmix64(pathID ^ (uint64(salt) << 32)))
	} else {
		idx = uint32(pathID) ^ salt
	}
	mc.probeDyn(idx)
}

func (mc *Machine) paFlush() {
	if mc.pan == 0 {
		return
	}
	mc.probeDyn(uint32(mc.pah) & 0xffff)
	mc.pah, mc.pan = 0, 0
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func oobMsg(idx int64, n int) string {
	return "index " + itoa(idx) + " out of bounds for length " + itoa(int64(n))
}

// itoa formats an int64 without allocation-heavy strconv paths; crash
// construction is cold, but the format must match the interpreter's
// byte for byte.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [21]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Run executes the named entry function on input, exactly as
// vm.Run(prog, entry, input, tracer, limits) would with the tracer the
// program's Spec was lowered from. The returned Result's Output and
// Cmps slices alias pooled buffers valid until the next Run.
func (mc *Machine) Run(entry string, input []byte) vm.Result {
	p := mc.p
	fi, ok := p.src.ByName[entry]
	if !ok {
		return vm.Result{Status: vm.StatusCrash, Crash: &vm.Crash{Kind: vm.KindAbort, Msg: "no entry function " + entry, Func: entry}}
	}
	mc.reset()
	f := &p.fns[fi]
	var argHandle int64
	if f.nparams > 0 {
		cells := mc.arenaAlloc(len(input))
		for i, b := range input {
			cells[i] = int64(b)
		}
		argHandle = mc.newArray(cells)
	}
	ret, crash, steps := mc.exec(int32(fi), argHandle)
	res := vm.Result{Ret: ret, Steps: steps, Output: mc.output, Cmps: mc.cmps}
	switch {
	case crash == nil:
		res.Status = vm.StatusOK
	case crash.Kind == vm.KindTimeout:
		res.Status = vm.StatusTimeout
	default:
		res.Status = vm.StatusCrash
		res.Crash = crash
	}
	return res
}

// exec is the dispatch loop. Step accounting replicates the
// interpreter: every opcode lowered from a cfg instruction charges one
// step with a timeout check before executing, and opStepChk charges
// the per-block step (plus the fault-injection hook) after a block's
// instructions and before its terminator.
func (mc *Machine) exec(fi int32, argHandle int64) (int64, *vm.Crash, int64) {
	p := mc.p
	lim := &mc.lim
	code := p.code
	var steps int64
	// Hot-loop constants, hoisted out of the dispatch so each iteration
	// reads registers instead of chasing mc/lim pointers.
	maxSteps := lim.MaxSteps
	maxCmp := lim.MaxCmpObs
	maxDepth := lim.MaxDepth
	injectAt := mc.injectAt

	f := &p.fns[fi]
	if len(mc.frames) >= maxDepth {
		return 0, mc.crash(vm.KindStackOverflow, f.pos, "call depth limit exceeded"), steps
	}
	mc.frames = append(mc.frames, mframe{fn: fi, base: 0, retPC: -1, dst: -1})
	base, fsize := int32(0), f.frameSize
	if int(fsize) > len(mc.slots) {
		mc.growSlots(int(fsize))
	}
	slots := mc.slots[:fsize]
	clear(slots)
	if f.nparams > 0 {
		slots[0] = argHandle
	}
	pc := f.entryPC

	for {
		in := &code[pc]
		pc++
		op := in.op
		if op < opStepChk {
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
		}
		switch op {
		case opConst:
			slots[in.dst] = in.imm
		case opMove:
			slots[in.dst] = slots[in.a]
		case opAdd:
			slots[in.dst] = slots[in.a] + slots[in.b]
		case opSub:
			slots[in.dst] = slots[in.a] - slots[in.b]
		case opMul:
			slots[in.dst] = slots[in.a] * slots[in.b]
		case opDiv:
			a, b := slots[in.a], slots[in.b]
			if b == 0 {
				return 0, mc.crash(vm.KindDivByZero, p.pos[pc-1], "division by zero"), steps
			}
			if a == math.MinInt64 && b == -1 {
				return 0, mc.crash(vm.KindDivByZero, p.pos[pc-1], "integer division overflow"), steps
			}
			slots[in.dst] = a / b
		case opMod:
			a, b := slots[in.a], slots[in.b]
			if b == 0 {
				return 0, mc.crash(vm.KindDivByZero, p.pos[pc-1], "modulo by zero"), steps
			}
			if a == math.MinInt64 && b == -1 {
				return 0, mc.crash(vm.KindDivByZero, p.pos[pc-1], "integer modulo overflow"), steps
			}
			slots[in.dst] = a % b
		case opBand:
			slots[in.dst] = slots[in.a] & slots[in.b]
		case opBor:
			slots[in.dst] = slots[in.a] | slots[in.b]
		case opBxor:
			slots[in.dst] = slots[in.a] ^ slots[in.b]
		case opShl:
			slots[in.dst] = slots[in.a] << (uint64(slots[in.b]) & 63)
		case opShr:
			slots[in.dst] = slots[in.a] >> (uint64(slots[in.b]) & 63)
		case opEq:
			a, b := slots[in.a], slots[in.b]
			r := a == b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
		case opNe:
			a, b := slots[in.a], slots[in.b]
			r := a != b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
		case opLt:
			a, b := slots[in.a], slots[in.b]
			r := a < b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
		case opLe:
			a, b := slots[in.a], slots[in.b]
			r := a <= b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
		case opGt:
			a, b := slots[in.a], slots[in.b]
			r := a > b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
		case opGe:
			a, b := slots[in.a], slots[in.b]
			r := a >= b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
		case opBadBin:
			return 0, mc.crash(vm.KindAbort, p.pos[pc-1], "unknown binary operator"), steps
		case opNeg:
			slots[in.dst] = -slots[in.a]
		case opNot:
			slots[in.dst] = boolToInt(slots[in.a] == 0)
		case opCompl:
			slots[in.dst] = ^slots[in.a]
		case opStr:
			src := p.strCells[in.imm]
			if mc.cells+int64(len(src)) > lim.MaxHeapCells {
				return 0, mc.crash(vm.KindOOM, p.pos[pc-1], "heap limit exceeded"), steps
			}
			cells := mc.arenaAlloc(len(src))
			copy(cells, src)
			slots[in.dst] = mc.newArray(cells)
		case opLoad:
			// Fast path: valid handle, in-bounds index. The crash paths
			// (and their lang.Pos materialisation) stay off it entirely.
			h := slots[in.a]
			if uint64(h-1) < uint64(len(mc.heap)) {
				arr := mc.heap[h-1]
				idx := slots[in.b]
				if uint64(idx) < uint64(len(arr)) {
					slots[in.dst] = arr[idx]
					continue
				}
				return 0, mc.crash(vm.KindOOBRead, p.pos[pc-1], oobMsg(idx, len(arr))), steps
			}
			_, crash := mc.arrayAt(h, p.pos[pc-1])
			return 0, crash, steps
		case opStore:
			h := slots[in.a]
			if uint64(h-1) < uint64(len(mc.heap)) {
				arr := mc.heap[h-1]
				idx := slots[in.b]
				if uint64(idx) < uint64(len(arr)) {
					arr[idx] = slots[in.dst]
					continue
				}
				return 0, mc.crash(vm.KindOOBWrite, p.pos[pc-1], oobMsg(idx, len(arr))), steps
			}
			_, crash := mc.arrayAt(h, p.pos[pc-1])
			return 0, crash, steps
		case opCall:
			cf := &p.fns[in.imm]
			if len(mc.frames) >= maxDepth {
				return 0, mc.crash(vm.KindStackOverflow, p.pos[pc-1], "call depth limit exceeded"), steps
			}
			newBase := base + fsize
			if top := int(newBase) + int(cf.frameSize); top > len(mc.slots) {
				mc.growSlots(top)
				slots = mc.slots[base : base+fsize]
			}
			cslots := mc.slots[newBase : newBase+cf.frameSize]
			clear(cslots)
			nargs := int(in.b)
			if nargs > int(cf.nparams) {
				nargs = int(cf.nparams)
			}
			for i := 0; i < nargs; i++ {
				cslots[i] = slots[p.argSlots[int(in.a)+i]]
			}
			mc.frames = append(mc.frames, mframe{fn: int32(in.imm), base: newBase, retPC: pc, dst: in.dst, cfs: fsize})
			base, fsize, slots = newBase, cf.frameSize, cslots
			pc = cf.entryPC
		case opLen:
			h := slots[in.a]
			if uint64(h-1) < uint64(len(mc.heap)) {
				slots[in.dst] = int64(len(mc.heap[h-1]))
				continue
			}
			_, crash := mc.arrayAt(h, p.pos[pc-1])
			return 0, crash, steps
		case opAlloc:
			n := slots[in.a]
			if n < 0 || n > lim.MaxAlloc {
				return 0, mc.crash(vm.KindBadAlloc, p.pos[pc-1], "allocation of "+itoa(n)+" cells"), steps
			}
			if mc.cells+n > lim.MaxHeapCells {
				return 0, mc.crash(vm.KindOOM, p.pos[pc-1], "heap limit exceeded"), steps
			}
			cells := mc.arenaAlloc(int(n))
			clear(cells)
			slots[in.dst] = mc.newArray(cells)
		case opAssert:
			if slots[in.a] == 0 {
				return 0, mc.crash(vm.KindAssertFail, p.pos[pc-1], "assertion failed"), steps
			}
			slots[in.dst] = 0
		case opAbort:
			return 0, mc.crash(vm.KindAbort, p.pos[pc-1], "abort called"), steps
		case opAbs:
			v := slots[in.a]
			if v < 0 {
				v = -v
			}
			slots[in.dst] = v
		case opMin:
			a, b := slots[in.a], slots[in.b]
			if b < a {
				a = b
			}
			slots[in.dst] = a
		case opMax:
			a, b := slots[in.a], slots[in.b]
			if b > a {
				a = b
			}
			slots[in.dst] = a
		case opOut:
			if len(mc.output) < 4096 {
				mc.output = append(mc.output, slots[in.a])
			}
			slots[in.dst] = 0
		case opNop:
		// Two-slot const+compare superinstructions: the header charged
		// the const's step; the handler charges the comparison's step
		// against its own pos, then evaluates against the immediate.
		case opConstEq:
			in2 := &code[pc]
			pc++
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a == cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
		case opConstNe:
			in2 := &code[pc]
			pc++
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a != cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
		case opConstLt:
			in2 := &code[pc]
			pc++
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a < cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
		case opConstLe:
			in2 := &code[pc]
			pc++
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a <= cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
		case opConstGt:
			in2 := &code[pc]
			pc++
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a > cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
		case opConstGe:
			in2 := &code[pc]
			pc++
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a >= cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
		case opConstAdd:
			in2 := &code[pc]
			pc++
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			slots[in2.dst] = slots[in.a] + cv
		case opConstSub:
			in2 := &code[pc]
			pc++
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			slots[in2.dst] = slots[in.a] - cv
		case opConstLoad:
			in2 := &code[pc]
			pc++
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			h := slots[in2.a]
			if uint64(h-1) < uint64(len(mc.heap)) {
				arr := mc.heap[h-1]
				if uint64(cv) < uint64(len(arr)) {
					slots[in2.dst] = arr[cv]
					continue
				}
				return 0, mc.crash(vm.KindOOBRead, p.pos[pc-1], oobMsg(cv, len(arr))), steps
			}
			_, crash := mc.arrayAt(h, p.pos[pc-1])
			return 0, crash, steps
		// Compare-and-branch: the header charged the comparison's step;
		// the handler stores the result, performs the block exit's
		// accounting against the fused opStepBr slot's pos, and
		// branches on the result.
		case opEqStepBr:
			in2 := &code[pc]
			pc++
			a, b := slots[in.a], slots[in.b]
			r := a == b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in2.b
			} else {
				pc = in2.dst
			}
		case opNeStepBr:
			in2 := &code[pc]
			pc++
			a, b := slots[in.a], slots[in.b]
			r := a != b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in2.b
			} else {
				pc = in2.dst
			}
		case opLtStepBr:
			in2 := &code[pc]
			pc++
			a, b := slots[in.a], slots[in.b]
			r := a < b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in2.b
			} else {
				pc = in2.dst
			}
		case opLeStepBr:
			in2 := &code[pc]
			pc++
			a, b := slots[in.a], slots[in.b]
			r := a <= b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in2.b
			} else {
				pc = in2.dst
			}
		case opGtStepBr:
			in2 := &code[pc]
			pc++
			a, b := slots[in.a], slots[in.b]
			r := a > b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in2.b
			} else {
				pc = in2.dst
			}
		case opGeStepBr:
			in2 := &code[pc]
			pc++
			a, b := slots[in.a], slots[in.b]
			r := a >= b
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: b, Op: lang.Kind(in.imm), Taken: r})
			}
			slots[in.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in2.b
			} else {
				pc = in2.dst
			}
		// Const+compare+branch: three live slots (const head charged by
		// the header, dead compare, dead opStepBr), three step charges,
		// each timing out against its own slot's pos.
		case opConstEqStepBr:
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-2], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a == cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in3.b
			} else {
				pc = in3.dst
			}
		case opConstNeStepBr:
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-2], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a != cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in3.b
			} else {
				pc = in3.dst
			}
		case opConstLtStepBr:
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-2], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a < cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in3.b
			} else {
				pc = in3.dst
			}
		case opConstLeStepBr:
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-2], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a <= cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in3.b
			} else {
				pc = in3.dst
			}
		case opConstGtStepBr:
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-2], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a > cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in3.b
			} else {
				pc = in3.dst
			}
		case opConstGeStepBr:
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-2], "step budget exhausted"), steps
			}
			cv := in.imm
			slots[in.dst] = cv
			a := slots[in2.a]
			r := a >= cv
			if len(mc.cmps) < maxCmp {
				mc.cmps = append(mc.cmps, vm.CmpObs{A: a, B: cv, Op: lang.Kind(in2.imm), Taken: r})
			}
			slots[in2.dst] = boolToInt(r)
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if r {
				pc = in3.b
			} else {
				pc = in3.dst
			}
		case opCallPush:
			cf := &p.fns[in.imm]
			if len(mc.frames) >= maxDepth {
				return 0, mc.crash(vm.KindStackOverflow, p.pos[pc-1], "call depth limit exceeded"), steps
			}
			newBase := base + fsize
			if top := int(newBase) + int(cf.frameSize); top > len(mc.slots) {
				mc.growSlots(top)
				slots = mc.slots[base : base+fsize]
			}
			cslots := mc.slots[newBase : newBase+cf.frameSize]
			clear(cslots)
			nargs := int(in.b)
			if nargs > int(cf.nparams) {
				nargs = int(cf.nparams)
			}
			for i := 0; i < nargs; i++ {
				cslots[i] = slots[p.argSlots[int(in.a)+i]]
			}
			mc.frames = append(mc.frames, mframe{fn: int32(in.imm), base: newBase, retPC: pc, dst: in.dst, cfs: fsize})
			base, fsize, slots = newBase, cf.frameSize, cslots
			mc.regs = append(mc.regs, 0)
			pc = cf.entryPC + 1
		case opStepChk:
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
		case opJmp:
			pc = in.a
		case opBr:
			if slots[in.a] != 0 {
				pc = in.b
			} else {
				pc = in.dst
			}
		case opRet:
			var v int64
			if in.a >= 0 {
				v = slots[in.a]
			}
			fr := mc.frames[len(mc.frames)-1]
			mc.frames = mc.frames[:len(mc.frames)-1]
			if len(mc.frames) == 0 {
				return v, nil, steps
			}
			base = fr.base - fr.cfs
			fsize = fr.cfs
			slots = mc.slots[base : base+fsize]
			slots[fr.dst] = v
			pc = fr.retPC
		case opProbeAdd:
			mc.m.Add(uint32(in.imm))
		case opProbePush:
			mc.regs = append(mc.regs, 0)
		case opProbeInc:
			mc.regs[len(mc.regs)-1] += uint64(in.imm)
		case opProbeBack:
			top := len(mc.regs) - 1
			mc.record(uint32(in.a), mc.regs[top]+uint64(in.imm))
			mc.regs[top] = uint64(p.backVals[in.b])
		case opProbeRetPath:
			top := len(mc.regs) - 1
			mc.record(uint32(in.a), mc.regs[top]+uint64(in.imm))
			mc.regs = mc.regs[:top]
		case opProbeHashEdge:
			top := len(mc.regs) - 1
			mc.regs[top] = splitmix64(mc.regs[top] ^ uint64(in.imm))
		case opProbeVisit:
			mc.hist[mc.histPos] = uint32(in.imm)
			mc.histPos = (mc.histPos + 1) % len(mc.hist)
			if mc.elide == nil {
				ngramVisit(mc.m, mc.hist, mc.histPos)
			} else {
				mc.probeDyn(uint32(ngramHash(mc.hist, mc.histPos)))
			}
		case opProbePAEnter:
			mc.pah = splitmix64(mc.pah ^ uint64(in.imm))
			mc.pan++
			if mc.pan >= p.spec.Segment {
				mc.paFlush()
			}
		case opProbePAFlush:
			mc.paFlush()
		// Fused block exits. Each does opStepChk's work — step charge,
		// timeout check against the head slot's pos, fault-injection
		// hook — then the folded probe and transfer, in the exact order
		// of the unfused sequence.
		case opStepBr:
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			if slots[in.a] != 0 {
				pc = in.b
			} else {
				pc = in.dst
			}
		case opStepJmp:
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			pc = in.a
		case opStepRet:
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			var v int64
			if in.a >= 0 {
				v = slots[in.a]
			}
			fr := mc.frames[len(mc.frames)-1]
			mc.frames = mc.frames[:len(mc.frames)-1]
			if len(mc.frames) == 0 {
				return v, nil, steps
			}
			base = fr.base - fr.cfs
			fsize = fr.cfs
			slots = mc.slots[base : base+fsize]
			slots[fr.dst] = v
			pc = fr.retPC
		case opStepAddJmp:
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			mc.m.Add(uint32(in.imm))
			pc = in.a
		case opStepIncJmp:
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			mc.regs[len(mc.regs)-1] += uint64(in.imm)
			pc = in.a
		case opStepBackJmp:
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			top := len(mc.regs) - 1
			mc.record(uint32(in.a), mc.regs[top]+uint64(in.imm))
			mc.regs[top] = uint64(p.backVals[in.b])
			pc = in.dst
		case opStepRetPathRet:
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			top := len(mc.regs) - 1
			mc.record(uint32(in.a), mc.regs[top]+uint64(in.imm))
			mc.regs = mc.regs[:top]
			var v int64
			if in.b >= 0 {
				v = slots[in.b]
			}
			fr := mc.frames[len(mc.frames)-1]
			mc.frames = mc.frames[:len(mc.frames)-1]
			if len(mc.frames) == 0 {
				return v, nil, steps
			}
			base = fr.base - fr.cfs
			fsize = fr.cfs
			slots = mc.slots[base : base+fsize]
			slots[fr.dst] = v
			pc = fr.retPC
		case opStepFlushRet:
			steps++
			if steps > maxSteps {
				return 0, mc.crash(vm.KindTimeout, p.pos[pc-1], "step budget exhausted"), steps
			}
			if steps >= injectAt {
				panic("vm: injected fault at step " + itoa(steps))
			}
			mc.paFlush()
			var v int64
			if in.a >= 0 {
				v = slots[in.a]
			}
			fr := mc.frames[len(mc.frames)-1]
			mc.frames = mc.frames[:len(mc.frames)-1]
			if len(mc.frames) == 0 {
				return v, nil, steps
			}
			base = fr.base - fr.cfs
			fsize = fr.cfs
			slots = mc.slots[base : base+fsize]
			slots[fr.dst] = v
			pc = fr.retPC
		case opAddJmp:
			mc.m.Add(uint32(in.imm))
			pc = in.a
		case opIncJmp:
			mc.regs[len(mc.regs)-1] += uint64(in.imm)
			pc = in.a
		case opBackJmp:
			top := len(mc.regs) - 1
			mc.record(uint32(in.a), mc.regs[top]+uint64(in.imm))
			mc.regs[top] = uint64(p.backVals[in.b])
			pc = in.dst
		case opElide:
			// A patched-out probe: no map write, no step charge.
		}
	}
}
