// Command pafuzz fuzzes a MiniC program (a benchmark subject or a .mc
// source file) with a chosen feedback/strategy configuration — the
// afl-fuzz analogue of this reproduction.
//
// Usage:
//
//	pafuzz -subject flvmeta -fuzzer cull -budget 200000
//	pafuzz -src prog.mc -fuzzer path -i seeds/ -o state/
//	pafuzz -resume -o state/
//
// With -o, single-phase configurations run as durable campaigns:
// checkpoints land in <state>/checkpoints/, crashing inputs in
// <state>/crashes/, and SIGINT/SIGTERM trigger a graceful shutdown
// checkpoint. -resume continues an interrupted campaign and is
// guaranteed to produce the same final report as an uninterrupted run.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/journal"
	"repro/internal/strategy"
	"repro/internal/subjects"
	"repro/internal/telemetry"
)

// maxSeedFile bounds seed corpus files loaded via -i; larger files are
// skipped with a warning rather than ballooning the campaign.
const maxSeedFile = 64 << 10

func main() {
	var (
		subjectName = flag.String("subject", "", "benchmark subject to fuzz (see -list)")
		srcPath     = flag.String("src", "", "MiniC source file to fuzz instead of a subject")
		fuzzerName  = flag.String("fuzzer", "path", "configuration: path|pcguard|cull|cull_r|opp|pathafl|afl")
		budget      = flag.Int64("budget", 200000, "execution budget (the wall-clock analogue)")
		roundBudget = flag.Int64("round", 0, "culling round budget (default budget/8)")
		seed        = flag.Int64("seed", 1, "campaign RNG seed")
		inDir       = flag.String("i", "", "seed corpus directory (one input per file)")
		stateDir    = flag.String("o", "", "campaign state directory (enables checkpointing and crash saving)")
		resume      = flag.Bool("resume", false, "resume the campaign checkpointed in -o")
		ckptEvery   = flag.Int64("ckpt-every", 25000, "executions between periodic checkpoints")
		list        = flag.Bool("list", false, "list benchmark subjects and exit")
		showCrash   = flag.Bool("crashes", false, "print full reports for unique crashes")
		engineName  = flag.String("engine", "bytecode", "execution engine: bytecode|cgt|interp (bytecode falls back to interp for feedbacks without a lowering; cgt adds self-patching probe elision with coverage-preserving retrace)")
		statusEvery = flag.Int64("status-every", 50000, "execution-count fallback between status lines (0 disables status)")
		statusPer   = flag.Duration("status-period", time.Second, "wall-clock interval between status lines")
		metricsAddr = flag.String("metrics-addr", "", "serve live metrics on this address (Prometheus at /metrics, JSON at /snapshot.json, dashboard at /)")
		workers     = flag.Int("workers", 1, "parallel fuzzing workers (>1 requires -o and a single-phase -fuzzer; -budget is per worker)")
		syncEvery   = flag.Int64("sync-every", 20000, "per-worker executions between fleet corpus syncs (0 disables)")
		watchdog    = flag.Duration("watchdog", 5*time.Second, "declare a fleet worker wedged after this long without progress (0 disables)")
		maxRestarts = flag.Int("max-restarts", 3, "consecutive worker failures before the fleet retires the worker")
		chaosEvery  = flag.Int64("chaos-every", 0, "fault injection: panic each worker's first attempt once past this exec count (0 disables; for supervision smoke tests)")
		analysisLvl = flag.String("analysis", "", "static-analysis strictness: strict runs the IR and bytecode verifiers on every compile (default off)")
		opt         = flag.Bool("opt", true, "enable verified bytecode optimization passes (constant folding, dead code)")
		reach       = flag.Bool("reach", false, "boost power-schedule energy by static crash-site reachability")
		guide       = flag.Bool("analysis-guide", false, "analysis-guided fuzzing: focus mutations on input-dependency byte ranges, boost unexplored input-dependent branches, skip input-independent cmplog sites")
		journalOn   = flag.Bool("journal", true, "write the structured event journal under <state>/journal (durable campaigns; inspect with paprof -journal)")
		stopAfter   = flag.Int64("stop-after", 0, "interrupt the campaign once the exec counter reaches this (reproducible interruption for resume/journal smoke tests)")
	)
	flag.Parse()

	if *analysisLvl != "" && *analysisLvl != "strict" {
		fatalf("unknown -analysis level %q (want strict or empty)", *analysisLvl)
	}
	icfg := instrument.Config{Analysis: *analysisLvl, NoOpt: !*opt}

	engine, engErr := parseEngineFlag(*engineName)
	if engErr != nil {
		fatalf("%v", engErr)
	}

	if *list {
		for _, s := range subjects.All() {
			fmt.Printf("%-10s %-6s %d planted bugs, %d seeds\n", s.Name, s.TypeLabel, len(s.Bugs), len(s.Seeds))
		}
		return
	}

	fleetOpts := fleet.Options{
		Workers:     *workers,
		SyncEvery:   *syncEvery,
		Watchdog:    *watchdog,
		MaxRestarts: *maxRestarts,
		CkptEvery:   *ckptEvery,
		Log:         os.Stderr,
		StopAfter:   *stopAfter,
	}
	if *statusEvery > 0 {
		fleetOpts.Status = os.Stderr
		fleetOpts.StatusEvery = *statusPer
	}
	if *chaosEvery > 0 {
		n := *chaosEvery
		fleetOpts.Chaos = func(worker, gen int, execs int64) fleet.ChaosAction {
			if gen == 0 && execs >= n {
				return fleet.ChaosPanic
			}
			return fleet.ChaosNone
		}
	}

	if *resume {
		if *stateDir == "" {
			fatalf("-resume requires -o <state dir>")
		}
		if fleet.HasManifest(campaign.OSFS{}, *stateDir) {
			resumeFleetCampaign(*stateDir, fleetOpts, engine, *metricsAddr, *showCrash, *journalOn)
			return
		}
		resumeCampaign(*stateDir, *ckptEvery, *showCrash, engine, *statusEvery, *statusPer, *metricsAddr, *journalOn, *stopAfter)
		return
	}

	var (
		target *core.Target
		seeds  [][]byte
		meta   campaign.Meta
		err    error
	)
	switch {
	case *subjectName != "":
		sub := subjects.Get(*subjectName)
		if sub == nil {
			fatalf("unknown subject %q (use -list)", *subjectName)
		}
		prog, perr := sub.Program()
		if perr != nil {
			fatalf("%v", perr)
		}
		target = core.FromProgram(prog)
		seeds = sub.Seeds
		meta.Subject = sub.Name
	case *srcPath != "":
		src, rerr := os.ReadFile(*srcPath)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		target, err = core.Compile(string(src))
		if err != nil {
			fatalf("compile: %v", err)
		}
		seeds = [][]byte{[]byte("seed")}
		sum := sha256.Sum256(src)
		meta.Source = *srcPath
		meta.SourceSum = hex.EncodeToString(sum[:])
	default:
		fatalf("one of -subject or -src is required (or -list)")
	}

	if *inDir != "" {
		loaded := loadSeedDir(*inDir)
		if len(loaded) == 0 {
			warnf("seed dir %s yielded no usable inputs; keeping default seeds", *inDir)
		} else {
			seeds = loaded
		}
	}

	meta.Fuzzer = *fuzzerName
	meta.Seed = *seed
	meta.Budget = *budget
	meta.Entry = target.Entry
	meta.Guide = *guide

	banner := meta.Subject
	if banner == "" {
		banner = filepath.Base(meta.Source)
	}
	banner += "/" + *fuzzerName

	if *stateDir != "" {
		if fb, profile, ok := strategy.SingleConfig(strategy.Name(*fuzzerName)); ok {
			rec := startTelemetry(telemetry.Info{
				Banner:   banner,
				Feedback: *fuzzerName,
				Seed:     *seed,
				Budget:   *budget,
				PID:      os.Getpid(),
			}, *stateDir, *metricsAddr)
			attachCartography(rec, target.Prog, fb, 0, banner)
			opts := fuzz.Options{
				Feedback:        fb,
				Profile:         profile,
				Seed:            *seed,
				Entry:           target.Entry,
				KeepCrashInputs: true,
				Engine:          engine,
				Instr:           icfg,
				ReachBoost:      *reach,
				AnalysisGuide:   *guide,
				Status:          os.Stderr,
				StatusPeriod:    *statusPer,
				StatusEvery:     *statusEvery,
				Telemetry:       rec,
			}
			if *statusEvery <= 0 {
				opts.Status = nil
			}
			jw := openJournal(*stateDir, *journalOn, rec)
			if *workers > 1 {
				fleetOpts.Telemetry = rec
				fleetOpts.Journal = jw
				s := fleet.New(*stateDir, fleetOpts)
				if err := s.Start(target.Prog, opts, meta, seeds); err != nil {
					fatalf("%v", err)
				}
				fmt.Printf("fleet: %d workers, %d execs each (sync every %d)\n", *workers, *budget, *syncEvery)
				runFleetDurable(s, *stateDir, *fuzzerName, *showCrash)
				closeJournal(jw)
				closeTelemetry(rec)
				return
			}
			opts.Journal = jw
			r := campaign.NewRunner(*stateDir, campaign.Config{Interval: *ckptEvery, Log: os.Stderr, StopAfter: *stopAfter})
			if err := r.Start(target.Prog, opts, meta, seeds); err != nil {
				fatalf("%v", err)
			}
			fillEngineInfo(rec, r.Fuzzer())
			runDurable(r, *stateDir, *fuzzerName, *showCrash)
			closeJournal(jw)
			closeTelemetry(rec)
			return
		}
		if *workers > 1 {
			fatalf("-workers %d requires a single-phase -fuzzer, not round-based configuration %q", *workers, *fuzzerName)
		}
		for _, n := range strategy.AllNames {
			if n == strategy.Name(*fuzzerName) {
				warnf("configuration %q is round-based and not checkpointable; running non-durable, crashes still saved to %s", *fuzzerName, *stateDir)
				break
			}
		}
	}
	if *workers > 1 {
		fatalf("-workers %d requires -o <state dir>", *workers)
	}

	// Round-based configurations restart their counters every round, so
	// only the live endpoint is offered — plot_data/fuzzer_stats (which
	// AFL defines as monotone) are reserved for durable single-config
	// campaigns above.
	rec := startTelemetry(telemetry.Info{
		Banner:   banner,
		Engine:   engine.String(),
		Feedback: *fuzzerName,
		Seed:     *seed,
		Budget:   *budget,
		PID:      os.Getpid(),
	}, "", *metricsAddr)
	camp := core.Campaign{
		Fuzzer:          strategy.Name(*fuzzerName),
		Budget:          *budget,
		RoundBudget:     *roundBudget,
		Seeds:           seeds,
		Seed:            *seed,
		KeepCrashInputs: *stateDir != "",
		Engine:          engine,
		Instr:           icfg,
		ReachBoost:      *reach,
		AnalysisGuide:   *guide,
		StatusPeriod:    *statusPer,
		StatusEvery:     *statusEvery,
		Telemetry:       rec,
	}
	if *statusEvery > 0 {
		camp.Status = os.Stderr
	}
	out, err := target.Fuzz(camp)
	closeTelemetry(rec)
	if err != nil {
		fatalf("%v", err)
	}
	if *stateDir != "" {
		if err := campaign.WriteCrashInputs(campaign.OSFS{}, *stateDir, out.Report); err != nil {
			warnf("saving crash inputs: %v", err)
		}
	}
	printReport(*fuzzerName, out.Report, out.Rounds, *showCrash)
}

// openJournal opens (or resumes) the structured event journal under
// <state>/journal. Journaling is display-only: a failed open degrades
// to a warning and the campaign runs unjournaled, byte-identical.
// When a recorder is active the journal directory is registered so the
// metrics endpoint can serve /genealogy.
func openJournal(stateDir string, enabled bool, rec *telemetry.Recorder) *journal.Writer {
	if !enabled || stateDir == "" {
		return nil
	}
	jw, err := journal.Open(filepath.Join(stateDir, "journal"), journal.Options{})
	if err != nil {
		warnf("journal disabled: %v", err)
		return nil
	}
	if rec != nil {
		rec.SetJournalDir(jw.Dir())
	}
	return jw
}

func closeJournal(jw *journal.Writer) {
	if jw == nil {
		return
	}
	if err := jw.Close(); err != nil {
		warnf("closing journal: %v", err)
	}
}

// startTelemetry builds the campaign's telemetry recorder: AFL-style
// fuzzer_stats/plot_data under stateDir (when set) and the live HTTP
// endpoint on metricsAddr (when set). Returns nil when neither output
// is requested — the campaign then skips all telemetry work.
func startTelemetry(info telemetry.Info, stateDir, metricsAddr string) *telemetry.Recorder {
	if stateDir == "" && metricsAddr == "" {
		return nil
	}
	rec := telemetry.New(telemetry.Config{Info: info})
	if stateDir != "" {
		if err := rec.AttachAFLOutput(stateDir); err != nil {
			warnf("telemetry output: %v", err)
		}
	}
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			warnf("metrics endpoint: %v", err)
		} else {
			fmt.Fprintf(os.Stderr, "pafuzz: serving metrics on http://%s/\n", ln.Addr())
			go http.Serve(ln, rec.Handler())
		}
	}
	rec.StartCollector(time.Second)
	return rec
}

// fillEngineInfo completes the recorder's identity once the fuzzer is
// built and the engine selection has resolved.
func fillEngineInfo(rec *telemetry.Recorder, f *fuzz.Fuzzer) {
	if rec == nil || f == nil {
		return
	}
	info := rec.Info()
	info.Engine = f.EngineName()
	info.Instrs = f.BytecodeInstrs()
	info.Nops = f.BytecodeNops()
	rec.SetInfo(info)
}

func closeTelemetry(rec *telemetry.Recorder) {
	if rec == nil {
		return
	}
	if err := rec.Close(); err != nil {
		warnf("closing telemetry: %v", err)
	}
}

// resumeCampaign reloads the newest valid checkpoint under dir,
// reconstructs the target from its metadata, and runs the campaign to
// completion (or the next interruption).
func resumeCampaign(dir string, ckptEvery int64, showCrash bool, engine fuzz.Engine, statusEvery int64, statusPer time.Duration, metricsAddr string, journalOn bool, stopAfter int64) {
	ck, warns, err := campaign.LoadLatest(campaign.OSFS{}, dir)
	for _, w := range warns {
		warnf("%s", w)
	}
	if err != nil {
		fatalf("%v", err)
	}
	meta := ck.Meta
	target := targetFromMeta(meta)

	fb, profile, ok := strategy.SingleConfig(strategy.Name(meta.Fuzzer))
	if !ok {
		fatalf("checkpointed configuration %q is not resumable", meta.Fuzzer)
	}
	// The engine is not part of campaign state: the bytecode engine is
	// observationally identical to the interpreter (the differential
	// tests enforce this), so a campaign checkpointed under one engine
	// resumes deterministically under either.
	banner := meta.Subject
	if banner == "" {
		banner = filepath.Base(meta.Source)
	}
	// AttachAFLOutput (inside startTelemetry) adopts the existing
	// plot_data's last relative_time as the elapsed base, so the resumed
	// campaign's rows continue the original series gaplessly.
	rec := startTelemetry(telemetry.Info{
		Banner:   banner + "/" + meta.Fuzzer,
		Feedback: meta.Fuzzer,
		Seed:     meta.Seed,
		Budget:   meta.Budget,
		PID:      os.Getpid(),
	}, dir, metricsAddr)
	attachCartography(rec, target.Prog, fb, meta.MapSize, banner+"/"+meta.Fuzzer)
	opts := fuzz.Options{
		Feedback:        fb,
		Profile:         profile,
		Seed:            meta.Seed,
		MapSize:         meta.MapSize,
		Entry:           meta.Entry,
		KeepCrashInputs: true,
		Engine:          engine,
		AnalysisGuide:   meta.Guide,
		StatusPeriod:    statusPer,
		StatusEvery:     statusEvery,
		Telemetry:       rec,
	}
	if statusEvery > 0 {
		opts.Status = os.Stderr
	}
	// Attach → fuzz.Restore truncates the journal back to the
	// checkpoint's event count; the replayed executions re-emit an
	// identical tail, keeping the resumed journal gapless.
	jw := openJournal(dir, journalOn, rec)
	opts.Journal = jw
	r := campaign.NewRunner(dir, campaign.Config{Interval: ckptEvery, Log: os.Stderr, StopAfter: stopAfter})
	if err := r.Attach(target.Prog, opts, ck); err != nil {
		fatalf("%v", err)
	}
	fillEngineInfo(rec, r.Fuzzer())
	fmt.Printf("resuming %s campaign at %d/%d execs\n", meta.Fuzzer, r.Fuzzer().Execs(), meta.Budget)
	runDurable(r, dir, meta.Fuzzer, showCrash)
	closeJournal(jw)
	closeTelemetry(rec)
}

// targetFromMeta reconstructs the fuzzed target from checkpoint or
// manifest metadata, refusing to resume against drifted sources.
func targetFromMeta(meta campaign.Meta) *core.Target {
	switch {
	case meta.Subject != "":
		sub := subjects.Get(meta.Subject)
		if sub == nil {
			fatalf("checkpoint references unknown subject %q", meta.Subject)
		}
		prog, perr := sub.Program()
		if perr != nil {
			fatalf("%v", perr)
		}
		return core.FromProgram(prog)
	case meta.Source != "":
		src, rerr := os.ReadFile(meta.Source)
		if rerr != nil {
			fatalf("checkpointed source: %v", rerr)
		}
		sum := sha256.Sum256(src)
		if got := hex.EncodeToString(sum[:]); got != meta.SourceSum {
			fatalf("source %s changed since the campaign started (sha256 %s, checkpoint has %s); resuming would not be deterministic", meta.Source, got, meta.SourceSum)
		}
		target, err := core.Compile(string(src))
		if err != nil {
			fatalf("compile: %v", err)
		}
		return target
	}
	fatalf("checkpoint names neither a subject nor a source file")
	return nil
}

// resumeFleetCampaign resumes a fleet from its manifest plus the
// workers' own checkpoints. The manifest's fleet shape (worker count,
// sync cadence, restart budget) overrides the flags — resuming with
// different values would break determinism.
func resumeFleetCampaign(dir string, fo fleet.Options, engine fuzz.Engine, metricsAddr string, showCrash bool, journalOn bool) {
	man, err := fleet.LoadManifest(campaign.OSFS{}, dir)
	if err != nil {
		fatalf("fleet manifest: %v", err)
	}
	meta := man.Meta
	target := targetFromMeta(meta)
	fb, profile, ok := strategy.SingleConfig(strategy.Name(meta.Fuzzer))
	if !ok {
		fatalf("fleet manifest references non-resumable configuration %q", meta.Fuzzer)
	}
	banner := meta.Subject
	if banner == "" {
		banner = filepath.Base(meta.Source)
	}
	rec := startTelemetry(telemetry.Info{
		Banner:   banner + "/" + meta.Fuzzer,
		Feedback: meta.Fuzzer,
		Seed:     meta.Seed,
		Budget:   meta.Budget,
		PID:      os.Getpid(),
	}, dir, metricsAddr)
	attachCartography(rec, target.Prog, fb, meta.MapSize, banner+"/"+meta.Fuzzer+" (fleet)")
	opts := fuzz.Options{
		Feedback:        fb,
		Profile:         profile,
		Seed:            meta.Seed,
		MapSize:         meta.MapSize,
		Entry:           meta.Entry,
		KeepCrashInputs: true,
		Engine:          engine,
		AnalysisGuide:   meta.Guide,
	}
	fo.Telemetry = rec
	// The fleet journal is supervisor-shared: worker restores append to
	// it without truncation, so peer events survive a resume.
	jw := openJournal(dir, journalOn, rec)
	fo.Journal = jw
	s := fleet.New(dir, fo)
	if err := s.Attach(target.Prog, opts, man); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("resuming %s fleet: %d workers, %d execs each\n", meta.Fuzzer, man.Workers, meta.Budget)
	runFleetDurable(s, dir, meta.Fuzzer, showCrash)
	closeJournal(jw)
	closeTelemetry(rec)
}

// runFleetDurable installs signal handling and drives a fleet to
// completion or interruption.
func runFleetDurable(s *fleet.Supervisor, dir, fuzzerName string, showCrash bool) {
	sigs := make(chan os.Signal, 4)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		for range sigs {
			fmt.Fprintln(os.Stderr, "pafuzz: interrupt received, checkpointing fleet (again to force-quit)")
			s.Signal()
		}
	}()

	res, err := s.Run()
	if err != nil {
		fatalf("%v", err)
	}
	if res.Interrupted {
		fmt.Printf("fleet interrupted; continue with: pafuzz -resume -o %s\n", dir)
		return
	}
	printReport(fuzzerName, res.Merged, 1, showCrash)
	for i, rep := range res.Workers {
		if rep == nil {
			continue
		}
		fmt.Printf("  worker %d: execs=%d queue=%d crashes=%d bugs=%d\n",
			i, rep.Stats.Execs, rep.QueueLen, len(rep.Crashes), len(rep.Bugs))
	}
	if res.Restarts > 0 || res.Wedges > 0 || len(res.Retired) > 0 {
		fmt.Printf("supervision: restarts=%d wedges=%d retired=%v\n", res.Restarts, res.Wedges, res.Retired)
	}
	for _, p := range res.Quarantined {
		fmt.Printf("  poison-input: worker=%d execs=%d x%d %s\n", p.Worker, p.Execs, p.Count, p.Msg)
	}
	fmt.Printf("state: %s (manifest %s)\n", dir, filepath.Join(dir, fleet.ManifestName))
}

// runDurable installs signal handling and drives a durable campaign.
// Repeated interrupts are handled idempotently by Runner.Signal: the
// first checkpoints and stops gracefully, the second force-exits.
func runDurable(r *campaign.Runner, dir, fuzzerName string, showCrash bool) {
	sigs := make(chan os.Signal, 4)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		for range sigs {
			fmt.Fprintln(os.Stderr, "pafuzz: interrupt received, checkpointing (again to force-quit)")
			r.Signal()
		}
	}()

	rep, interrupted, err := r.Run()
	if err != nil {
		fatalf("%v", err)
	}
	if interrupted {
		fmt.Printf("campaign interrupted at %d execs; continue with: pafuzz -resume -o %s\n", r.Fuzzer().Execs(), dir)
		return
	}
	printReport(fuzzerName, rep, 1, showCrash)
	fmt.Printf("state: %s (crashes in %s)\n", dir, filepath.Join(dir, "crashes"))
}

// loadSeedDir reads one input per regular file in dir, in name order,
// skipping unreadable or oversized files with a warning.
func loadSeedDir(dir string) [][]byte {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatalf("seed dir: %v", err)
	}
	var seeds [][]byte
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		info, err := ent.Info()
		if err != nil {
			warnf("skipping seed %s: %v", path, err)
			continue
		}
		if info.Size() > maxSeedFile {
			warnf("skipping seed %s: %d bytes exceeds %d byte cap", path, info.Size(), maxSeedFile)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			warnf("skipping seed %s: %v", path, err)
			continue
		}
		seeds = append(seeds, data)
	}
	return seeds
}

func printReport(fuzzerName string, rep *fuzz.Report, rounds int, showCrash bool) {
	fmt.Printf("fuzzer=%s execs=%d queue=%d favored=%d timeouts=%d crashes=%d faults=%d rounds=%d\n",
		fuzzerName, rep.Stats.Execs, rep.QueueLen, rep.FavoredLen,
		rep.Stats.Timeouts, rep.Stats.CrashExecs, rep.Stats.InternalFaults, rounds)
	fmt.Printf("unique crashes (stack hash): %d\n", len(rep.Crashes))
	keys := rep.BugKeys()
	fmt.Printf("unique bugs (ground truth): %d\n", len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		rec := rep.Bugs[k]
		fmt.Printf("  %-40s x%d (first at exec %d)\n", k, rec.Count, rec.FoundAt)
	}
	for _, ft := range rep.Faults {
		fmt.Printf("  internal-fault: %-25s x%d (first at exec %d)\n", ft.Msg, ft.Count, ft.FoundAt)
	}
	if showCrash {
		for _, rec := range rep.Crashes {
			fmt.Printf("\n%s\n  input: %q\n", rec.Crash, rec.Input)
		}
	}
}

// parseEngineFlag maps the -engine flag to a fuzz.Engine. "bytecode"
// (the default) selects the compiled engine, falling back to the
// reference interpreter for feedbacks without a lowering; "cgt" the
// coverage-guided tracing engine (probe elision + retrace); "interp"
// forces the interpreter everywhere.
func parseEngineFlag(s string) (fuzz.Engine, error) {
	switch s {
	case "bytecode", "auto", "":
		return fuzz.EngineAuto, nil
	case "cgt":
		return fuzz.EngineCGT, nil
	case "interp", "interpreter":
		return fuzz.EngineInterp, nil
	}
	return fuzz.EngineAuto, fmt.Errorf("unknown -engine %q (want bytecode, cgt, or interp)", s)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pafuzz: "+format+"\n", args...)
	os.Exit(1)
}

func warnf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pafuzz: warning: "+format+"\n", args...)
}
