package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// emitN appends n simple novelty events to w with ascending exec
// counters starting at base.
func emitN(t *testing.T, w *Writer, worker, n int, base int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		w.Emit(Event{
			Kind: KindNovelty, Worker: worker, Execs: base + int64(i),
			Stage: "havoc", Entry: Int(i), Parent: Int(i - 1),
		})
	}
	if err := w.Err(); err != nil {
		t.Fatalf("writer degraded: %v", err)
	}
}

func readAll(t *testing.T, dir string) ([]Event, *Diag) {
	t.Helper()
	events, diag, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	return events, diag
}

func TestWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(Event{Kind: KindStart, Feedback: "path", Engine: "bytecode", Seed: 7})
	emitN(t, w, 0, 10, 100)
	w.Emit(Event{Kind: KindCrash, Worker: 0, Execs: 200, Hash: "deadbeef", Bug: "overflow:main"})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events, diag := readAll(t, dir)
	if !diag.OK() {
		t.Fatalf("journal not OK: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
	if len(events) != 12 {
		t.Fatalf("got %d events, want 12", len(events))
	}
	if events[0].Kind != KindStart || events[0].Seq != 1 {
		t.Fatalf("first event %+v, want start seq 1", events[0])
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.V != SchemaVersion {
			t.Fatalf("event %d has schema version %d", i, ev.V)
		}
	}
	last := events[len(events)-1]
	if last.Kind != KindCrash || last.Hash != "deadbeef" || last.Bug != "overflow:main" {
		t.Fatalf("crash event round-trip mangled: %+v", last)
	}
	if ev := events[5]; ev.Entry == nil || *ev.Entry != 4 || ev.Parent == nil || *ev.Parent != 3 {
		t.Fatalf("pointer fields mangled: %+v", ev)
	}
}

func TestWriterRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations; retention keeps the newest 3.
	w, err := Open(dir, Options{MaxSegmentBytes: 256, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	emitN(t, w, 0, 100, 0)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 3 {
		t.Fatalf("retention kept %d segments, cap is 3: %v", len(segs), segs)
	}
	// Head-pruned stream: still gapless, FirstSeq > 1.
	events, diag := readAll(t, dir)
	if !diag.OK() {
		t.Fatalf("pruned journal not OK: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
	if diag.FirstSeq <= 1 {
		t.Fatalf("expected head pruning, FirstSeq=%d", diag.FirstSeq)
	}
	if events[len(events)-1].Seq != 100 {
		t.Fatalf("tail seq %d, want 100", events[len(events)-1].Seq)
	}
}

func TestWriterReopenContinuesSeq(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	emitN(t, w, 0, 5, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Seq() != 5 {
		t.Fatalf("reopened seq %d, want 5", w2.Seq())
	}
	emitN(t, w2, 0, 5, 5)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	events, diag := readAll(t, dir)
	if !diag.OK() || len(events) != 10 {
		t.Fatalf("after reopen: %d events, errors=%v gaps=%v", len(events), diag.Errors, diag.Gaps)
	}
}

func TestWriterRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	emitN(t, w, 0, 5, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last line mid-write (crash artifact).
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if w2.Seq() != 4 {
		t.Fatalf("recovered seq %d, want 4 (torn event dropped)", w2.Seq())
	}
	emitN(t, w2, 0, 1, 4)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	events, diag := readAll(t, dir)
	if !diag.OK() || len(events) != 5 {
		t.Fatalf("after torn-tail recovery: %d events, errors=%v gaps=%v", len(events), diag.Errors, diag.Gaps)
	}
}

func TestWriterRecoversCorruptLine(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	emitN(t, w, 0, 4, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the 3rd line in place: the valid prefix ends at event 2.
	path := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	lines[2] = "{\"garbage\": tru\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over corrupt line: %v", err)
	}
	if w2.Seq() != 2 {
		t.Fatalf("recovered seq %d, want 2 (corrupt suffix dropped)", w2.Seq())
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, diag := readAll(t, dir)
	if !diag.OK() {
		t.Fatalf("recovered journal not OK: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
}

func TestTruncateTo(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	emitN(t, w, 0, 50, 0)

	// Truncate mid-stream: events 31..50 drop, including whole trailing
	// segments.
	if err := w.TruncateTo(30); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	if w.Seq() != 30 {
		t.Fatalf("seq after truncate %d, want 30", w.Seq())
	}
	events, diag := readAll(t, dir)
	if !diag.OK() {
		t.Fatalf("truncated journal not OK: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
	if got := events[len(events)-1].Seq; got != 30 {
		t.Fatalf("tail seq %d, want 30", got)
	}

	// Appending after truncation continues from 31 — the resume replay.
	emitN(t, w, 0, 5, 30)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, diag = readAll(t, dir)
	if !diag.OK() || events[len(events)-1].Seq != 35 {
		t.Fatalf("post-truncate append broken: last=%d errors=%v gaps=%v",
			events[len(events)-1].Seq, diag.Errors, diag.Gaps)
	}
}

func TestTruncateToJumpsForward(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateTo(100); err != nil {
		t.Fatal(err)
	}
	w.Emit(Event{Kind: KindCycle, Execs: 1})
	if w.Seq() != 101 {
		t.Fatalf("seq %d, want 101 (jumped to checkpoint count)", w.Seq())
	}
	w.Close()
}

func TestFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{RingSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave two workers; each ring only holds its own worker's
	// events, capped at RingSize, oldest first.
	for i := 0; i < 20; i++ {
		w.Emit(Event{Kind: KindNovelty, Worker: i % 2, Execs: int64(i)})
	}
	ring := w.FlightEvents(1)
	if len(ring) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(ring))
	}
	for i, ev := range ring {
		if ev.Worker != 1 {
			t.Fatalf("ring[%d] belongs to worker %d", i, ev.Worker)
		}
		if i > 0 && ev.Seq <= ring[i-1].Seq {
			t.Fatalf("ring not oldest-first: %d after %d", ev.Seq, ring[i-1].Seq)
		}
	}

	w.DumpFlight("crash-test", 1)
	path := filepath.Join(dir, FlightDir, "crash-test.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight dump missing: %v", err)
	}
	if n := strings.Count(string(data), "\n"); n != 8 {
		t.Fatalf("flight dump has %d lines, want 8", n)
	}

	// First dump wins: a later dump under the same name must not clobber
	// the original forensic record.
	w.Emit(Event{Kind: KindNovelty, Worker: 1, Execs: 999})
	w.DumpFlight("crash-test", 1)
	again, _ := os.ReadFile(path)
	if string(again) != string(data) {
		t.Fatal("second DumpFlight overwrote the first")
	}
	w.Close()
}

func TestTruncateClearsFlightRings(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	emitN(t, w, 0, 10, 0)
	if err := w.TruncateTo(5); err != nil {
		t.Fatal(err)
	}
	if got := w.FlightEvents(0); len(got) != 0 {
		t.Fatalf("flight ring kept %d stale events across truncation", len(got))
	}
	w.Close()
}

func TestNilWriterIsSafe(t *testing.T) {
	var w *Writer
	w.Emit(Event{Kind: KindStart})
	w.Flush()
	w.DumpFlight("x", 0)
	if err := w.TruncateTo(5); err != nil {
		t.Fatal(err)
	}
	if w.Seq() != 0 || w.Err() != nil || w.Dir() != "" || w.FlightEvents(0) != nil {
		t.Fatal("nil writer accessors not zero")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWriters hammers one shared writer from several
// goroutines — the fleet's supervisor-plus-workers shape — and checks
// the result is a gapless, schema-clean stream. Run with -race.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{MaxSegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const publishers = 4
	const perPublisher = 500
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				w.Emit(Event{Kind: KindNovelty, Worker: p, Execs: int64(i), Stage: "havoc"})
				if i%100 == 0 {
					w.Flush()
					_ = w.FlightEvents(p)
				}
			}
			w.DumpFlight(fmt.Sprintf("worker-%d", p), p)
		}(p)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events, diag := readAll(t, dir)
	if !diag.OK() {
		t.Fatalf("concurrent journal not OK: errors=%v gaps=%v", diag.Errors, diag.Gaps)
	}
	if len(events) != publishers*perPublisher {
		t.Fatalf("got %d events, want %d", len(events), publishers*perPublisher)
	}
	perWorker := make(map[int]int)
	for _, ev := range events {
		perWorker[ev.Worker]++
	}
	for p := 0; p < publishers; p++ {
		if perWorker[p] != perPublisher {
			t.Fatalf("worker %d has %d events, want %d", p, perWorker[p], perPublisher)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"overflow:main/3": "overflow_main_3",
		"":                "x",
		"a b\tc":          "a_b_c",
		"ok-name.txt":     "ok-name.txt",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
	long := strings.Repeat("a", 300)
	if got := SanitizeName(long); len(got) != 128 {
		t.Errorf("SanitizeName long input: len %d, want 128", len(SanitizeName(long)))
	}
}
