package instrument

import (
	"fmt"
	"sort"

	"repro/internal/balllarus"
	"repro/internal/cfg"
	"repro/internal/vm"
)

// Profiler is a standalone Ball-Larus path profiler: unlike the fuzzing
// tracers it records exact (function, path id) frequencies rather than
// hashed map updates, which is what the paper's Figure 1 illustrates
// and what performance-profiling clients of the encoding consume. It
// backs the paprof tool and the quickstart example.
type Profiler struct {
	prog   *cfg.Program
	encs   []*balllarus.Encoding
	plans  []balllarus.Plan
	counts map[pathKey]uint64
	regs   []uint64
}

type pathKey struct {
	fn int
	id uint64
}

// NewProfiler builds a profiler for prog. Functions whose acyclic path
// count exceeds balllarus.MaxPaths are rejected (the fuzzing tracers
// fall back to hashing instead; a profiler must stay exact).
func NewProfiler(prog *cfg.Program) (*Profiler, error) {
	p := &Profiler{
		prog:   prog,
		encs:   make([]*balllarus.Encoding, len(prog.Funcs)),
		plans:  make([]balllarus.Plan, len(prog.Funcs)),
		counts: make(map[pathKey]uint64),
	}
	for i, f := range prog.Funcs {
		enc, err := balllarus.Encode(f)
		if err != nil {
			return nil, fmt.Errorf("profiler: %w", err)
		}
		p.encs[i] = enc
		p.plans[i] = enc.OptimizedPlan()
	}
	return p, nil
}

// Encoding exposes the numbering of one function.
func (p *Profiler) Encoding(fnID int) *balllarus.Encoding { return p.encs[fnID] }

// Begin implements vm.Tracer.
func (p *Profiler) Begin() { p.regs = p.regs[:0] }

// EnterFunc implements vm.Tracer.
func (p *Profiler) EnterFunc(f *cfg.Func) { p.regs = append(p.regs, 0) }

// Edge implements vm.Tracer.
func (p *Profiler) Edge(f *cfg.Func, e int) {
	plan := &p.plans[f.ID]
	top := len(p.regs) - 1
	if act, ok := plan.Back[e]; ok {
		p.counts[pathKey{fn: f.ID, id: p.regs[top] + uint64(act.EndInc)}]++
		p.regs[top] = uint64(act.StartVal)
		return
	}
	p.regs[top] += uint64(plan.EdgeInc[e])
}

// Ret implements vm.Tracer.
func (p *Profiler) Ret(f *cfg.Func, b int) {
	top := len(p.regs) - 1
	p.counts[pathKey{fn: f.ID, id: p.regs[top] + uint64(plan(p, f).RetInc[b])}]++
	p.regs = p.regs[:top]
}

func plan(p *Profiler, f *cfg.Func) *balllarus.Plan { return &p.plans[f.ID] }

// Reset clears accumulated counts.
func (p *Profiler) Reset() { clear(p.counts) }

// PathCount is one profiled acyclic path.
type PathCount struct {
	Func   string
	FnID   int
	PathID uint64
	Count  uint64
	// Blocks is the regenerated block sequence of the path.
	Blocks []balllarus.PathStep
}

// Counts returns the profile, ordered by function then descending
// count.
func (p *Profiler) Counts() []PathCount {
	var out []PathCount
	for k, c := range p.counts {
		pc := PathCount{
			Func:   p.prog.Funcs[k.fn].Name,
			FnID:   k.fn,
			PathID: k.id,
			Count:  c,
		}
		if steps, err := p.encs[k.fn].Regenerate(k.id); err == nil {
			pc.Blocks = steps
		}
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FnID != out[j].FnID {
			return out[i].FnID < out[j].FnID
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PathID < out[j].PathID
	})
	return out
}

// Profile runs one input under the profiler and returns its path
// counts. The profiler accumulates across calls until Reset.
func (p *Profiler) Profile(entry string, input []byte, lim vm.Limits) vm.Result {
	return vm.Run(p.prog, entry, input, p, lim)
}
