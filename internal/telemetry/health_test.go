package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
)

// TestHealthzFreshAndStale walks the probe through its lifecycle: 503
// before any publish, 200 while publishing, 503 again after a minute of
// silence.
func TestHealthzFreshAndStale(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Now: clk.now, Info: goldenInfo()})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	getHealth := func() (int, Health) {
		t.Helper()
		code, body, ctype := fetch(t, srv.URL+"/healthz")
		if !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("content type %q, want JSON", ctype)
		}
		var h Health
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("healthz does not decode: %v\n%s", err, body)
		}
		return code, h
	}

	// Nothing published yet: unhealthy, but the endpoint must answer.
	code, h := getHealth()
	if code != http.StatusServiceUnavailable || h.OK {
		t.Fatalf("pre-publish health = %d %+v, want 503 !ok", code, h)
	}
	if h.PublishAgeSecs >= 0 {
		t.Fatalf("pre-publish age %v, want negative sentinel", h.PublishAgeSecs)
	}

	clk.advance(2 * time.Second)
	r.Publish(goldenSnapshot().Counters)
	r.NoteCheckpoint(12345)
	clk.advance(5 * time.Second)
	code, h = getHealth()
	if code != http.StatusOK || !h.OK {
		t.Fatalf("fresh health = %d %+v, want 200 ok", code, h)
	}
	if h.Execs != 12345 {
		t.Errorf("health execs %d, want 12345", h.Execs)
	}
	if !h.CheckpointRecorded || h.CheckpointExecs != 12345 || h.CheckpointAgeSecs != 5 {
		t.Errorf("checkpoint liveness %+v, want recorded at 12345 execs 5s ago", h)
	}
	if h.PublishAgeSecs != 5 {
		t.Errorf("publish age %v, want 5s", h.PublishAgeSecs)
	}

	// A minute of silence wedges the probe.
	clk.advance(healthStale + time.Second)
	code, h = getHealth()
	if code != http.StatusServiceUnavailable || h.OK {
		t.Fatalf("stale health = %d %+v, want 503 !ok", code, h)
	}
}

// TestHealthzFleetWorkers: with per-worker publishes, one stale worker
// is flagged but does not fail the probe while another is fresh, and
// the exec total aggregates across workers.
func TestHealthzFleetWorkers(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Now: clk.now})
	c := goldenSnapshot().Counters
	c.Execs = 1000
	r.PublishWorker(0, c)
	clk.advance(healthStale + 10*time.Second) // worker 0 goes stale
	c.Execs = 2000
	r.PublishWorker(1, c)
	clk.advance(time.Second)

	h := r.health()
	if !h.OK {
		t.Fatalf("fleet with one fresh worker unhealthy: %+v", h)
	}
	if h.Execs != 3000 {
		t.Errorf("aggregate execs %d, want 3000", h.Execs)
	}
	if len(h.Workers) != 2 {
		t.Fatalf("%d worker rows, want 2", len(h.Workers))
	}
	byID := map[int]WorkerHealth{}
	for _, w := range h.Workers {
		byID[w.ID] = w
	}
	if !byID[0].Stale || byID[1].Stale {
		t.Errorf("staleness flags wrong: %+v", h.Workers)
	}
}

// TestGenealogyEndpoint: without a journal the endpoint 404s with a
// hint; with one it renders the HTML report from the on-disk stream.
func TestGenealogyEndpoint(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Now: clk.now, Info: goldenInfo()})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	code, body, _ := fetch(t, srv.URL+"/genealogy")
	if code != http.StatusNotFound || !strings.Contains(body, "-journal") {
		t.Fatalf("no-journal response = %d %q, want 404 with a hint", code, body)
	}

	dir := t.TempDir()
	w, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(journal.Event{Kind: journal.KindStart, Feedback: "path", Engine: "bytecode"})
	w.Emit(journal.Event{Kind: journal.KindNovelty, Stage: "seed", Entry: journal.Int(0),
		Parent: journal.Int(-1), Cells: []uint32{1, 2}, Cov: 2, Len: 4})
	w.Emit(journal.Event{Kind: journal.KindNovelty, Stage: "havoc", Entry: journal.Int(1),
		Parent: journal.Int(0), Cells: []uint32{3}, Cov: 3, Len: 6, Execs: 500})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r.SetJournalDir(w.Dir())

	code, body, ctype := fetch(t, srv.URL+"/genealogy")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/html") {
		t.Fatalf("genealogy status %d ctype %q", code, ctype)
	}
	for _, want := range []string{"discovery attribution", "genealogy", "flvmeta/path", "havoc"} {
		if !strings.Contains(body, want) {
			t.Errorf("genealogy page missing %q", want)
		}
	}
}
