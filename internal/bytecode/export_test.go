package bytecode

import "repro/internal/cfg"

// SetTestBreakPass installs (or clears, with nil) the optimizer test
// seam: fn runs after the named pass on every function copy, before
// that pass's verification. Tests use it to prove the verifier catches
// a broken pass.
func SetTestBreakPass(fn func(pass string, f *cfg.Func)) {
	testBreakPass = fn
}
