package analysis

import (
	"math"

	"repro/internal/cfg"
	"repro/internal/lang"
)

// Interval is an inclusive integer range. Lo > Hi encodes bottom (no
// value); the full range is top (nothing known).
type Interval struct{ Lo, Hi int64 }

var (
	topI    = Interval{math.MinInt64, math.MaxInt64}
	bottomI = Interval{1, 0}
)

// IsBottom reports the empty interval.
func (iv Interval) IsBottom() bool { return iv.Lo > iv.Hi }

// Singleton reports whether iv holds exactly one value.
func (iv Interval) Singleton() bool { return iv.Lo == iv.Hi }

// Contains reports whether v lies in iv.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// hull is the smallest interval covering both operands.
func hull(a, b Interval) Interval {
	if a.IsBottom() {
		return b
	}
	if b.IsBottom() {
		return a
	}
	return Interval{min64(a.Lo, b.Lo), max64(a.Hi, b.Hi)}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// addChecked returns a+b and whether it overflowed.
func addChecked(a, b int64) (int64, bool) {
	s := a + b
	return s, (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0)
}

func addI(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return bottomI
	}
	lo, of1 := addChecked(a.Lo, b.Lo)
	hi, of2 := addChecked(a.Hi, b.Hi)
	if of1 || of2 {
		return topI
	}
	return Interval{lo, hi}
}

func negI(a Interval) Interval {
	if a.IsBottom() {
		return bottomI
	}
	if a.Lo == math.MinInt64 || a.Hi == math.MinInt64 {
		return topI
	}
	return Interval{-a.Hi, -a.Lo}
}

func subI(a, b Interval) Interval { return addI(a, negI(b)) }

// mulI widens to top unless both operands fit in 32 bits, where the
// four corner products cannot overflow.
func mulI(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return bottomI
	}
	const lim = 1 << 31
	if a.Lo < -lim || a.Hi > lim || b.Lo < -lim || b.Hi > lim {
		return topI
	}
	p := [4]int64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
	out := Interval{p[0], p[0]}
	for _, v := range p[1:] {
		out.Lo = min64(out.Lo, v)
		out.Hi = max64(out.Hi, v)
	}
	return out
}

// cmpI evaluates a comparison over intervals into {0,1} (or a sharper
// singleton when the ranges decide it).
func cmpI(op lang.Kind, a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return bottomI
	}
	boolI := func(truth, decided bool) Interval {
		if !decided {
			return Interval{0, 1}
		}
		if truth {
			return Interval{1, 1}
		}
		return Interval{0, 0}
	}
	switch op {
	case lang.EQ:
		if a.Singleton() && b.Singleton() {
			return boolI(a.Lo == b.Lo, true)
		}
		return boolI(false, a.Hi < b.Lo || b.Hi < a.Lo)
	case lang.NE:
		if a.Singleton() && b.Singleton() {
			return boolI(a.Lo != b.Lo, true)
		}
		return boolI(true, a.Hi < b.Lo || b.Hi < a.Lo)
	case lang.LT:
		return boolI(a.Hi < b.Lo, a.Hi < b.Lo || a.Lo >= b.Hi)
	case lang.LE:
		return boolI(a.Hi <= b.Lo, a.Hi <= b.Lo || a.Lo > b.Hi)
	case lang.GT:
		return boolI(a.Lo > b.Hi, a.Lo > b.Hi || a.Hi <= b.Lo)
	case lang.GE:
		return boolI(a.Lo >= b.Hi, a.Lo >= b.Hi || a.Hi < b.Lo)
	}
	return Interval{0, 1}
}

// Env is the abstract state at one program point: a value interval per
// slot plus, for slots holding array handles, the array's length
// interval (top when unknown or not an array).
type Env struct {
	Val []Interval
	Len []Interval
}

// NewEnv returns a fresh all-top environment for a frame of the given
// size. Exported for client analyses (e.g. the interprocedural layer)
// that replay the interval transfer function at selected points.
func NewEnv(frame int) Env { return newEnv(frame) }

// CopyFrom copies o into e (both must share a frame size).
func (e *Env) CopyFrom(o *Env) { e.copyFrom(o) }

// StepInstr applies in's interval transfer function to env. A
// non-empty return names a fault the instruction is guaranteed to
// raise on every execution reaching it. Exported for client analyses
// that walk a block's instructions from a recorded entry state.
func (ii *Intervals) StepInstr(env *Env, in *cfg.Instr) (fault string) {
	return ii.stepInstr(env, in)
}

func newEnv(frame int) Env {
	e := Env{Val: make([]Interval, frame), Len: make([]Interval, frame)}
	for i := range e.Val {
		e.Val[i] = topI
		e.Len[i] = topI
	}
	return e
}

func (e *Env) copyFrom(o *Env) {
	copy(e.Val, o.Val)
	copy(e.Len, o.Len)
}

// joinWith hulls o into e, reporting whether e changed.
func (e *Env) joinWith(o *Env) bool {
	changed := false
	for i := range e.Val {
		if h := hull(e.Val[i], o.Val[i]); h != e.Val[i] {
			e.Val[i] = h
			changed = true
		}
		if h := hull(e.Len[i], o.Len[i]); h != e.Len[i] {
			e.Len[i] = h
			changed = true
		}
	}
	return changed
}

// widenFrom widens e's bounds that moved since prev to ±∞, forcing
// termination on loops that grow an interval every iteration.
func (e *Env) widenFrom(prev *Env) {
	w := func(cur, old Interval) Interval {
		if cur.IsBottom() || old.IsBottom() {
			return cur
		}
		if cur.Lo < old.Lo {
			cur.Lo = math.MinInt64
		}
		if cur.Hi > old.Hi {
			cur.Hi = math.MaxInt64
		}
		return cur
	}
	for i := range e.Val {
		e.Val[i] = w(e.Val[i], prev.Val[i])
		e.Len[i] = w(e.Len[i], prev.Len[i])
	}
}

// Intervals is the result of the per-function interval/constant
// propagation: entry-state per block, interval-level reachability, and
// per-edge feasibility. It is path-insensitive except that edges whose
// branch condition is a decided constant are pruned, which is what lets
// the lint detect interval-level unreachable code behind always-false
// branches.
type Intervals struct {
	Fn *cfg.Func
	// In is the abstract state at each block's entry (meaningful only
	// for Reached blocks).
	In []Env
	// Reached marks blocks the analysis could not rule out.
	Reached []bool
	// EdgeFeasible marks CFG edges the analysis could not rule out.
	EdgeFeasible []bool
}

// IntervalsOf runs the interval propagation over f.
func IntervalsOf(f *cfg.Func) *Intervals {
	n := len(f.Blocks)
	ii := &Intervals{
		Fn:           f,
		In:           make([]Env, n),
		Reached:      make([]bool, n),
		EdgeFeasible: make([]bool, len(f.Edges)),
	}
	for b := 0; b < n; b++ {
		ii.In[b] = newEnv(f.FrameSize)
	}
	ii.Reached[0] = true
	// Parameters: unknown values; the input parameter of main holds an
	// array of unknown non-negative length. Length top is [min,max];
	// refine to non-negative for readability of results.
	for s := 0; s < f.NParams; s++ {
		ii.In[0].Len[s] = Interval{0, math.MaxInt64}
	}

	visits := make([]int, n)
	cur := newEnv(f.FrameSize)
	const widenAfter = 8
	for changed := true; changed; {
		changed = false
		for _, b := range ReversePostorder(f) {
			if !ii.Reached[b] {
				continue
			}
			cur.copyFrom(&ii.In[b])
			stopped := false
			blk := &f.Blocks[b]
			for i := range blk.Instrs {
				if ii.stepInstr(&cur, &blk.Instrs[i]) != "" {
					stopped = true
					break
				}
			}
			if stopped {
				continue // guaranteed fault: successors unreachable via b
			}
			then, els := true, true
			if blk.Term.Kind == cfg.TermBr {
				cond := cur.Val[blk.Term.Cond]
				then = cond.Lo != 0 || cond.Hi != 0 // can be nonzero
				els = cond.Contains(0)
			}
			flow := func(e int, feasible bool) {
				if e < 0 || !feasible {
					return
				}
				ii.EdgeFeasible[e] = true
				to := f.Edges[e].To
				if !ii.Reached[to] {
					ii.Reached[to] = true
					ii.In[to].copyFrom(&cur)
					visits[to]++
					changed = true
					return
				}
				prev := newEnv(f.FrameSize)
				prev.copyFrom(&ii.In[to])
				if ii.In[to].joinWith(&cur) {
					visits[to]++
					if visits[to] > widenAfter {
						ii.In[to].widenFrom(&prev)
					}
					changed = true
				}
			}
			flow(blk.EdgeThen, then)
			flow(blk.EdgeElse, els)
		}
	}
	return ii
}

// stepInstr applies in's transfer function to env. A non-empty return
// names a fault the instruction is guaranteed to raise on every
// execution reaching it (so nothing after it in the block runs).
func (ii *Intervals) stepInstr(env *Env, in *cfg.Instr) (fault string) {
	setVal := func(s int, v Interval) {
		env.Val[s] = v
		env.Len[s] = topI
	}
	switch in.Op {
	case cfg.OpConst:
		setVal(in.Dst, Interval{in.Imm, in.Imm})
	case cfg.OpStr:
		env.Val[in.Dst] = topI
		env.Len[in.Dst] = Interval{int64(len(in.Str)), int64(len(in.Str))}
	case cfg.OpMove:
		env.Val[in.Dst] = env.Val[in.A]
		env.Len[in.Dst] = env.Len[in.A]
	case cfg.OpBin:
		a, b := env.Val[in.A], env.Val[in.B]
		var v Interval
		switch in.Sub {
		case lang.PLUS:
			v = addI(a, b)
		case lang.MINUS:
			v = subI(a, b)
		case lang.STAR:
			v = mulI(a, b)
		case lang.SLASH, lang.PCT:
			if b == (Interval{0, 0}) {
				return "division or modulo by zero" // on every execution
			}
			if a.Singleton() && b.Singleton() && b.Lo != 0 && !(a.Lo == math.MinInt64 && b.Lo == -1) {
				if in.Sub == lang.SLASH {
					v = Interval{a.Lo / b.Lo, a.Lo / b.Lo}
				} else {
					v = Interval{a.Lo % b.Lo, a.Lo % b.Lo}
				}
			} else {
				v = topI
			}
		case lang.EQ, lang.NE, lang.LT, lang.LE, lang.GT, lang.GE:
			v = cmpI(in.Sub, a, b)
		case lang.SHL, lang.SHR, lang.AMP, lang.PIPE, lang.CARET:
			if a.Singleton() && b.Singleton() {
				var r int64
				switch in.Sub {
				case lang.SHL:
					r = a.Lo << (uint64(b.Lo) & 63)
				case lang.SHR:
					r = a.Lo >> (uint64(b.Lo) & 63)
				case lang.AMP:
					r = a.Lo & b.Lo
				case lang.PIPE:
					r = a.Lo | b.Lo
				case lang.CARET:
					r = a.Lo ^ b.Lo
				}
				v = Interval{r, r}
			} else {
				v = topI
			}
		default:
			v = topI
		}
		setVal(in.Dst, v)
	case cfg.OpUn:
		a := env.Val[in.A]
		switch in.Sub {
		case lang.MINUS:
			setVal(in.Dst, negI(a))
		case lang.NOT:
			switch {
			case a == (Interval{0, 0}):
				setVal(in.Dst, Interval{1, 1})
			case !a.Contains(0):
				setVal(in.Dst, Interval{0, 0})
			default:
				setVal(in.Dst, Interval{0, 1})
			}
		default:
			setVal(in.Dst, topI)
		}
	case cfg.OpLoad:
		if ii.guaranteedOOB(env, in.A, in.B) {
			return "out-of-bounds load"
		}
		setVal(in.Dst, topI)
	case cfg.OpStore:
		if ii.guaranteedOOB(env, in.A, in.B) {
			return "out-of-bounds store"
		}
	case cfg.OpCall:
		setVal(in.Dst, topI)
	case cfg.OpBuiltin:
		arg := func(i int) Interval {
			if i < len(in.Args) {
				return env.Val[in.Args[i]]
			}
			return topI
		}
		argLen := func(i int) Interval {
			if i < len(in.Args) {
				return env.Len[in.Args[i]]
			}
			return topI
		}
		switch in.Callee {
		case cfg.BAbort:
			return "abort"
		case cfg.BAssert:
			if arg(0) == (Interval{0, 0}) {
				return "assert of a provably-zero value"
			}
			setVal(in.Dst, Interval{0, 0})
		case cfg.BLen:
			l := argLen(0)
			setVal(in.Dst, Interval{max64(l.Lo, 0), max64(l.Hi, 0)})
		case cfg.BAlloc:
			sz := arg(0)
			if !sz.IsBottom() && sz.Hi < 0 {
				return "allocation with provably negative size"
			}
			env.Val[in.Dst] = topI
			env.Len[in.Dst] = Interval{max64(sz.Lo, 0), max64(sz.Hi, 0)}
		case cfg.BAbs:
			a := arg(0)
			switch {
			case a.IsBottom() || a.Lo == math.MinInt64:
				setVal(in.Dst, topI)
			case a.Lo >= 0:
				setVal(in.Dst, a)
			case a.Hi <= 0:
				setVal(in.Dst, negI(a))
			default:
				setVal(in.Dst, Interval{0, max64(-a.Lo, a.Hi)})
			}
		case cfg.BMin:
			a, b := arg(0), arg(1)
			setVal(in.Dst, Interval{min64(a.Lo, b.Lo), min64(a.Hi, b.Hi)})
		case cfg.BMax:
			a, b := arg(0), arg(1)
			setVal(in.Dst, Interval{max64(a.Lo, b.Lo), max64(a.Hi, b.Hi)})
		case cfg.BOut:
			setVal(in.Dst, Interval{0, 0})
		default:
			setVal(in.Dst, topI)
		}
	}
	return ""
}

// FoldedConst describes one instruction whose result the interval
// analysis proves to be a single value and whose evaluation is
// effect-free, so a compiler may replace it with a constant load of
// Val without changing any observable behavior.
type FoldedConst struct {
	Instr int
	Val   int64
}

// FoldableConsts returns the foldable instructions of block b in
// instruction order (nil when b is interval-unreachable). Effect-free
// excludes comparisons (both engines record every comparison
// observation), memory accesses, allocations, calls, and any operation
// that could fault; a division or modulo folds only when both operands
// are compile-time constants and the operation provably cannot trap.
func (ii *Intervals) FoldableConsts(b int) []FoldedConst {
	if !ii.Reached[b] {
		return nil
	}
	f := ii.Fn
	env := newEnv(f.FrameSize)
	env.copyFrom(&ii.In[b])
	var out []FoldedConst
	blk := &f.Blocks[b]
	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		pure := foldablePure(&env, in)
		if ii.stepInstr(&env, in) != "" {
			break // guaranteed fault: nothing after it executes
		}
		if !pure {
			continue
		}
		d := InstrDef(in)
		if d < 0 {
			continue
		}
		if v := env.Val[d]; v.Singleton() {
			out = append(out, FoldedConst{Instr: i, Val: v.Lo})
		}
	}
	return out
}

// foldablePure reports whether in is effect-free: no comparison
// observation, no memory or heap effect, no possible fault. OpConst is
// excluded (folding it is a no-op).
func foldablePure(env *Env, in *cfg.Instr) bool {
	switch in.Op {
	case cfg.OpMove:
		return true
	case cfg.OpUn:
		switch in.Sub {
		case lang.MINUS, lang.NOT, lang.TILDE:
			return true
		}
	case cfg.OpBin:
		switch in.Sub {
		case lang.PLUS, lang.MINUS, lang.STAR,
			lang.AMP, lang.PIPE, lang.CARET, lang.SHL, lang.SHR:
			return true
		case lang.SLASH, lang.PCT:
			a, b := env.Val[in.A], env.Val[in.B]
			return a.Singleton() && b.Singleton() && b.Lo != 0 &&
				!(a.Lo == math.MinInt64 && b.Lo == -1)
		}
	case cfg.OpBuiltin:
		switch in.Callee {
		case cfg.BAbs, cfg.BMin, cfg.BMax:
			return true
		}
	}
	return false
}

// guaranteedOOB reports whether indexing slot arr with slot idx is out
// of bounds on every execution reaching this point: the index is
// provably negative, or provably at/above every possible length of the
// array.
func (ii *Intervals) guaranteedOOB(env *Env, arr, idx int) bool {
	iv := env.Val[idx]
	if iv.IsBottom() {
		return false
	}
	if iv.Hi < 0 {
		return true
	}
	l := env.Len[arr]
	return l.Hi < math.MaxInt64 && iv.Lo >= l.Hi
}
