package lang_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/vm"
)

// Native Go fuzz targets: the MiniC frontend itself is fuzzed — the
// compiler substrate of a fuzzing paper had better survive its own
// medicine. Under plain `go test` these run their seed corpora as
// regression tests; `go test -fuzz FuzzParse ./internal/lang` explores
// further.

var fuzzSeeds = []string{
	"",
	"func main(input) { return 0; }",
	"func f(a,b) { return a+b; } func main(input) { return f(1,2); }",
	`func main(input) { var s = "str"; while (1) { break; } return s[0]; }`,
	"func main(input) { if (1 && 0 || 2) { out(1); } else { out(2); } return 0; }",
	"func main(input) { for (var i = 0; i < 9; i = i + 1) { continue; } return 0; }",
	"func main(input) { return 'x' + 0x7fffffffffffffff; }",
	"func main(input) { return -(-(-1)); }",
	"}{)(][;;;", "func", "func main(", "/* unterminated",
	"func main(input) { a[0] = a[a[a[0]]]; }",
	"func main(input) { return 1 <<<< 2; }",
	"\x00\xff\xfe", "'", `"`, "//",
}

// FuzzParse: the parser must never panic and must either error or
// produce a printable program whose print re-parses.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		prog, err := lang.Parse(src)
		if err != nil || prog == nil {
			return
		}
		printed := lang.Print(prog)
		reparsed, err := lang.Parse(printed)
		if err != nil {
			t.Fatalf("printed program does not re-parse: %v\noriginal: %q\nprinted:\n%s", err, src, printed)
		}
		// Print is a fixpoint under reparse: one round canonicalises.
		if again := lang.Print(reparsed); again != printed {
			t.Fatalf("print not stable under reparse:\noriginal: %q\nfirst:\n%s\nsecond:\n%s", src, printed, again)
		}
	})
}

// FuzzCompileAndRun: whatever parses and checks must lower and execute
// without panicking — the VM's sanitizer turns all misbehaviour into
// reports, never into Go-level faults.
func FuzzCompileAndRun(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s, []byte("input"))
	}
	f.Fuzz(func(t *testing.T, src string, input []byte) {
		if len(src) > 1<<12 || len(input) > 1<<10 {
			return
		}
		prog, err := cfg.Compile(src)
		if err != nil {
			return
		}
		lim := vm.DefaultLimits()
		lim.MaxSteps = 1 << 16 // keep pathological programs quick
		res := vm.Run(prog, "main", input, vm.NullTracer{}, lim)
		// Determinism is part of the contract.
		res2 := vm.Run(prog, "main", input, vm.NullTracer{}, lim)
		if res.Status != res2.Status || res.Ret != res2.Ret {
			t.Fatalf("nondeterministic execution of fuzzed program:\n%s", src)
		}
	})
}

// FuzzLexer: the lexer terminates and never panics on arbitrary bytes.
func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			return
		}
		toks, _ := lang.LexAll(string(data))
		if len(toks) == 0 {
			t.Fatal("LexAll returned no tokens (EOF missing)")
		}
		if toks[len(toks)-1].Kind != lang.EOF {
			t.Fatal("token stream does not end with EOF")
		}
	})
}
