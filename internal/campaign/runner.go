package campaign

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/fuzz"
	"repro/internal/telemetry"
)

// Config tunes a Runner.
type Config struct {
	// FS is the filesystem used for all state (default OSFS).
	FS FS
	// Interval is the minimum number of executions between periodic
	// checkpoints (default 25000). Checkpoints land on the first
	// queue-entry boundary past each interval, so they never perturb
	// the campaign's execution sequence.
	Interval int64
	// Keep is how many checkpoints to retain (default 2: the newest
	// plus one fallback in case the newest is torn by a crash).
	Keep int
	// Log, when non-nil, receives warnings (skipped checkpoints, failed
	// writes). Checkpoint failures are reported here and the campaign
	// continues; durability degrades, fuzzing does not stop.
	Log io.Writer
	// StopAfter, when positive, simulates an interruption: the runner
	// behaves as if RequestStop were called once the execution counter
	// reaches it. The fault-injection and determinism tests use it to
	// interrupt campaigns at exact, reproducible points.
	StopAfter int64
	// Boundary, when non-nil, runs at every queue-entry boundary before
	// the runner's own checkpoint logic. Returning false stops the
	// campaign immediately WITHOUT writing a checkpoint — the fleet
	// supervisor uses this to abandon a stale worker attempt (its
	// replacement owns the state directory now) and to park workers at
	// sync barriers.
	Boundary func(*fuzz.Fuzzer) bool
	// Exit is called to terminate the process on a forced (second)
	// signal. Defaults to os.Exit; tests inject a recorder.
	Exit func(code int)
}

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = OSFS{}
	}
	if c.Interval <= 0 {
		c.Interval = 25000
	}
	if c.Keep <= 0 {
		c.Keep = 2
	}
	if c.Exit == nil {
		c.Exit = os.Exit
	}
	return c
}

// Runner drives one durable fuzzing campaign rooted at a state
// directory:
//
//	<dir>/checkpoints/ckpt-<execs>.pafc   sealed state snapshots
//	<dir>/crashes/<bug key>               first input per unique bug
//	<dir>/faults/<fault msg>              inputs that panicked the VM
type Runner struct {
	cfg  Config
	dir  string
	meta Meta
	f    *fuzz.Fuzzer

	lastCkpt int64
	stop     atomic.Bool
	signals  atomic.Int64
}

// NewRunner builds a runner over the state directory dir.
func NewRunner(dir string, cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults(), dir: dir}
}

// Fuzzer exposes the underlying campaign (nil before Start/Attach).
func (r *Runner) Fuzzer() *fuzz.Fuzzer { return r.f }

// Meta returns the campaign identity.
func (r *Runner) Meta() Meta { return r.meta }

// RequestStop asks the campaign to shut down gracefully: at the next
// queue-entry boundary a final checkpoint is written and Run returns
// with interrupted=true. Safe to call from any goroutine (signal
// handlers).
func (r *Runner) RequestStop() { r.stop.Store(true) }

// Signal handles one delivered interrupt and is idempotent across
// repeats: the first call requests a graceful stop (final checkpoint at
// the next queue-entry boundary), the second forces immediate exit
// after a best-effort checkpoint, and further signals are no-ops (the
// exit is already in flight). The forced checkpoint may race the fuzz
// goroutine mid-mutation; that is safe by design — sealed checkpoints
// are checksummed, so a torn write is detected on resume and LoadLatest
// falls back to the previous good one. Safe to call from a signal
// handler goroutine.
func (r *Runner) Signal() {
	switch r.signals.Add(1) {
	case 1:
		r.RequestStop()
	case 2:
		func() {
			defer func() { recover() }() // state may be mid-mutation
			if r.f != nil {
				if err := r.checkpoint(); err != nil {
					r.logf("forced-exit checkpoint failed: %v", err)
				}
			}
		}()
		r.cfg.Exit(130)
	}
}

// Start begins a fresh campaign: builds the fuzzer, executes the seed
// corpus, and writes checkpoint zero so the campaign is resumable from
// the very beginning.
func (r *Runner) Start(prog *cfg.Program, opts fuzz.Options, meta Meta, seeds [][]byte) error {
	f, err := fuzz.New(prog, opts)
	if err != nil {
		return err
	}
	for _, s := range seeds {
		f.AddSeed(s)
	}
	r.f = f
	r.meta = meta
	if err := r.cfg.FS.MkdirAll(r.dir); err != nil {
		return err
	}
	if err := r.checkpoint(); err != nil {
		// The initial checkpoint is load-bearing: failing it means the
		// state dir is unusable, better to find out before fuzzing.
		return fmt.Errorf("campaign: initial checkpoint failed: %w", err)
	}
	return nil
}

// Attach resumes a campaign from a loaded checkpoint (see LoadLatest).
// opts must reproduce the original campaign's options; the caller
// derives them from ck.Meta.
func (r *Runner) Attach(prog *cfg.Program, opts fuzz.Options, ck *Checkpoint) error {
	f, err := fuzz.Restore(prog, opts, ck.Snap)
	if err != nil {
		return err
	}
	r.f = f
	r.meta = ck.Meta
	r.lastCkpt = ck.Snap.Stats.Execs
	return nil
}

// Run fuzzes until meta.Budget executions or a stop request, writing
// periodic checkpoints. On normal completion it returns the final
// report and persists a final checkpoint plus all crash inputs; on
// interruption it returns interrupted=true and a nil report — the
// campaign continues via resume.
func (r *Runner) Run() (rep *fuzz.Report, interrupted bool, err error) {
	if r.f == nil {
		return nil, false, fmt.Errorf("campaign: Run before Start/Attach")
	}
	r.f.SetCheckpointHook(r.hook)
	defer r.f.SetCheckpointHook(nil)
	r.f.Fuzz(r.meta.Budget)
	if r.f.Execs() < r.meta.Budget {
		// Stopped early; the hook wrote the final checkpoint.
		return nil, true, nil
	}
	rep = r.f.Report()
	if cerr := r.checkpoint(); cerr != nil {
		r.logf("final checkpoint failed: %v", cerr)
	}
	return rep, false, nil
}

// hook runs at every queue-entry boundary inside the fuzz loop — the
// deterministic safe points where full state can be captured.
func (r *Runner) hook(f *fuzz.Fuzzer) bool {
	if r.cfg.Boundary != nil && !r.cfg.Boundary(f) {
		// The supervisor abandoned this attempt (or wants an immediate
		// stop without persisting): no checkpoint, the state dir belongs
		// to someone else now.
		return false
	}
	if r.cfg.StopAfter > 0 && f.Execs() >= r.cfg.StopAfter {
		r.stop.Store(true)
	}
	if r.stop.Load() {
		if err := r.checkpoint(); err != nil {
			r.logf("shutdown checkpoint failed: %v", err)
		}
		return false
	}
	if f.Execs()-r.lastCkpt >= r.cfg.Interval {
		if err := r.checkpoint(); err != nil {
			// A failed periodic checkpoint costs durability, not the
			// campaign: keep fuzzing on the last good one.
			r.logf("checkpoint at %d execs failed: %v", f.Execs(), err)
		}
	}
	return true
}

// checkpoint snapshots the campaign, writes a sealed checkpoint, and
// persists any new crash/fault inputs.
func (r *Runner) checkpoint() error {
	if tel := r.f.Telemetry(); tel != nil {
		defer tel.StartSpan(telemetry.StageCheckpoint)()
	}
	snap := r.f.Snapshot()
	ck := &Checkpoint{Meta: r.meta, Snap: snap}
	if err := writeCheckpoint(r.cfg.FS, r.dir, ck, r.cfg.Keep); err != nil {
		return err
	}
	r.lastCkpt = snap.Stats.Execs
	if tel := r.f.Telemetry(); tel != nil {
		// Liveness for /healthz: a durable campaign that stops
		// checkpointing is unhealthy even while its exec counter moves.
		tel.NoteCheckpoint(snap.Stats.Execs)
	}
	r.writeFindings(snap)
	return nil
}

// writeFindings persists crash and internal-fault inputs from a
// snapshot, one file per unique key, skipping files already on disk.
// Failures are warnings: findings are also inside every checkpoint.
func (r *Runner) writeFindings(snap *fuzz.Snapshot) {
	if len(snap.Bugs) > 0 {
		dir := join(r.dir, "crashes")
		if err := r.cfg.FS.MkdirAll(dir); err != nil {
			r.logf("crashes dir: %v", err)
			return
		}
		for _, b := range snap.Bugs {
			if b.Input == nil {
				continue
			}
			path := join(dir, SanitizeName(b.Key))
			if exists(r.cfg.FS, path) {
				continue
			}
			if err := WriteFileAtomic(r.cfg.FS, path, b.Input); err != nil {
				r.logf("saving crash input %s: %v", b.Key, err)
			}
		}
	}
	if len(snap.Faults) > 0 {
		dir := join(r.dir, "faults")
		if err := r.cfg.FS.MkdirAll(dir); err != nil {
			r.logf("faults dir: %v", err)
			return
		}
		for _, ft := range snap.Faults {
			path := join(dir, SanitizeName(ft.Msg))
			if exists(r.cfg.FS, path) {
				continue
			}
			if err := WriteFileAtomic(r.cfg.FS, path, ft.Input); err != nil {
				r.logf("saving fault input: %v", err)
			}
		}
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		fmt.Fprintf(r.cfg.Log, "campaign: "+format+"\n", args...)
	}
}

// WriteCrashInputs persists a finished report's unique crashing inputs
// under dir/crashes, named by triage (bug) key — the non-durable path
// pafuzz uses when no checkpointing is active.
func WriteCrashInputs(fs FS, dir string, rep *fuzz.Report) error {
	if rep == nil || len(rep.Bugs) == 0 {
		return nil
	}
	cdir := join(dir, "crashes")
	if err := fs.MkdirAll(cdir); err != nil {
		return err
	}
	var firstErr error
	for _, k := range rep.BugKeys() {
		rec := rep.Bugs[k]
		if rec == nil || rec.Input == nil {
			continue
		}
		path := join(cdir, SanitizeName(k))
		if exists(fs, path) {
			continue
		}
		if err := WriteFileAtomic(fs, path, rec.Input); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SanitizeName maps an arbitrary key (bug keys contain ':', fault
// messages contain spaces) to a safe filename.
func SanitizeName(key string) string {
	if key == "" {
		return "_"
	}
	out := make([]byte, 0, len(key))
	for i := 0; i < len(key) && i < 128; i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
