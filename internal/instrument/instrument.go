// Package instrument translates VM execution events into coverage map
// updates, implementing every feedback mechanism the paper evaluates:
//
//   - edge coverage (the pcguard baseline),
//   - Ball-Larus intra-procedural acyclic path coverage (the paper's
//     contribution),
//   - basic-block coverage and n-gram coverage (the sensitivity ladder
//     discussed in §VII),
//   - a PathAFL-like whole-program path-hash feedback (Appendix C).
//
// Tracers are constructed once per (program, feedback) pair — the
// analogue of compile-time instrumentation — and reused across
// executions; the caller owns the coverage map and resets it between
// runs.
package instrument

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/analysis/interproc"
	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/vm"
)

// Feedback selects a coverage feedback mechanism.
type Feedback int

// Feedback mechanisms.
const (
	FeedbackEdge Feedback = iota
	FeedbackPath
	FeedbackBlock
	FeedbackNGram
	FeedbackPathAFL
)

var feedbackNames = map[Feedback]string{
	FeedbackEdge:    "edge",
	FeedbackPath:    "path",
	FeedbackBlock:   "block",
	FeedbackNGram:   "ngram",
	FeedbackPathAFL: "pathafl",
}

// String names the feedback.
func (f Feedback) String() string {
	if s, ok := feedbackNames[f]; ok {
		return s
	}
	return fmt.Sprintf("feedback-%d", int(f))
}

// ParseFeedback resolves a feedback name.
func ParseFeedback(s string) (Feedback, error) {
	for f, name := range feedbackNames {
		if name == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("unknown feedback %q (want edge|path|block|ngram|pathafl)", s)
}

// MixMode selects how path IDs and function identifiers combine into a
// map index.
type MixMode int

// Mix modes.
const (
	// MixXOR is the paper's formula: (path_id XOR function) % map_size,
	// with the function identifier drawn from a per-function salt.
	MixXOR MixMode = iota
	// MixHash mixes the pair through a 64-bit finalizer before
	// truncation; the collision-rate tests compare the two.
	MixHash
)

// Config tunes tracer construction.
type Config struct {
	// NGram is the window length for FeedbackNGram (default 4).
	NGram int
	// NaivePlacement selects the unoptimized Ball-Larus placement
	// (every DAG edge carries its Val) instead of the spanning-tree
	// chord placement. Both produce identical path IDs; the flag exists
	// for the ablation bench.
	NaivePlacement bool
	// Mix selects the map-index mixing mode for path feedback.
	Mix MixMode
	// PathAFLMinBlocks is the function-size pruning threshold of the
	// PathAFL-like feedback (functions smaller than this are not
	// tracked in the path hash), mirroring PathAFL's partial
	// instrumentation. Default 4.
	PathAFLMinBlocks int
	// PathAFLSegment bounds the length of hashed whole-program path
	// segments. Default 32.
	PathAFLSegment int
	// SelectiveMaxPaths is the per-function acyclic path count above
	// which FeedbackSelective falls back to edge coverage (default
	// 256).
	SelectiveMaxPaths int
	// Analysis selects the static-analysis strictness. "strict" makes
	// New verify the IR up front and makes the bytecode compiler run
	// the IR verifier after every optimization pass plus the structural
	// verifier after lowering and fusion; "" (the default) skips
	// verification. Tests run strict; production fuzzing keeps it off
	// for speed.
	Analysis string
	// NoOpt disables the bytecode optimization passes (constant
	// folding, dead-store elimination, branch folding, dead-block
	// elimination). Optimization is on by default — the differential
	// tests pin its observational equivalence — and the flag exists for
	// the ablation bench and debugging.
	NoOpt bool
	// Facts carries the interprocedural analysis result consumed by
	// guided-mode clients (analysis-guided mutation, dead path-cell
	// elision; see guide.go). It never influences tracer construction
	// or bytecode lowering — the compile cache strips it from its key —
	// so a nil and non-nil Facts produce byte-identical instrumentation.
	Facts *interproc.Facts
}

func (c Config) withDefaults() Config {
	if c.NGram <= 0 {
		c.NGram = 4
	}
	if c.PathAFLMinBlocks <= 0 {
		c.PathAFLMinBlocks = 4
	}
	if c.PathAFLSegment <= 0 {
		c.PathAFLSegment = 32
	}
	return c
}

// splitmix64 is the 64-bit finalizer used to derive salts and hashed
// indices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnSalt derives a stable pseudo-random identifier per function,
// playing the role of the compile-time random location IDs AFL-style
// instrumentation assigns.
func fnSalt(fnID int) uint32 { return uint32(splitmix64(uint64(fnID) + 0x5bd1e995)) }

// edgeBase computes, per function, the offset of its edges in the
// global edge ID space.
func edgeBase(p *cfg.Program) []uint32 {
	base := make([]uint32, len(p.Funcs))
	var n uint32
	for i, f := range p.Funcs {
		base[i] = n
		n += uint32(len(f.Edges))
	}
	return base
}

// blockBase is edgeBase for blocks.
func blockBase(p *cfg.Program) []uint32 {
	base := make([]uint32, len(p.Funcs))
	var n uint32
	for i, f := range p.Funcs {
		base[i] = n
		n += uint32(len(f.Blocks))
	}
	return base
}

// New constructs the tracer implementing fb over prog, writing to m.
// With cfg.Analysis set to "strict", the IR verifier runs over prog
// first and a violation fails construction.
func New(fb Feedback, prog *cfg.Program, m *coverage.Map, cfg Config) (vm.Tracer, error) {
	cfg = cfg.withDefaults()
	if cfg.Analysis == "strict" {
		if err := analysis.Verify(prog); err != nil {
			return nil, err
		}
	}
	switch fb {
	case FeedbackEdge:
		return NewEdgeTracer(prog, m), nil
	case FeedbackPath:
		return NewPathTracer(prog, m, cfg)
	case FeedbackBlock:
		return NewBlockTracer(prog, m), nil
	case FeedbackNGram:
		return NewNGramTracer(prog, m, cfg.NGram), nil
	case FeedbackPathAFL:
		return NewPathAFLTracer(prog, m, cfg), nil
	case FeedbackPath2:
		return NewPathNGramTracer(prog, m, cfg)
	case FeedbackSelective:
		return NewSelectivePathTracer(prog, m, cfg)
	}
	return nil, fmt.Errorf("unknown feedback %v", fb)
}

// EdgeTracer implements classic edge coverage with exact global edge
// IDs (no collisions when the map is at least as large as the program's
// edge count), the analogue of AFL++'s pcguard instrumentation.
type EdgeTracer struct {
	m    *coverage.Map
	base []uint32
}

// NewEdgeTracer builds an edge-coverage tracer.
func NewEdgeTracer(p *cfg.Program, m *coverage.Map) *EdgeTracer {
	return &EdgeTracer{m: m, base: edgeBase(p)}
}

// Begin implements vm.Tracer.
func (t *EdgeTracer) Begin() {}

// EnterFunc implements vm.Tracer.
func (t *EdgeTracer) EnterFunc(*cfg.Func) {}

// Edge implements vm.Tracer.
func (t *EdgeTracer) Edge(f *cfg.Func, e int) { t.m.Add(t.base[f.ID] + uint32(e)) }

// Ret implements vm.Tracer.
func (t *EdgeTracer) Ret(*cfg.Func, int) {}

// GlobalEdgeID returns the map index the tracer uses for edge e of f,
// for tools that need to invert the map (the showmap analogue).
func (t *EdgeTracer) GlobalEdgeID(f *cfg.Func, e int) uint32 { return t.base[f.ID] + uint32(e) }

// BlockTracer implements basic-block coverage (the n=0 rung of the
// sensitivity ladder).
type BlockTracer struct {
	m    *coverage.Map
	base []uint32
}

// NewBlockTracer builds a block-coverage tracer.
func NewBlockTracer(p *cfg.Program, m *coverage.Map) *BlockTracer {
	return &BlockTracer{m: m, base: blockBase(p)}
}

// Begin implements vm.Tracer.
func (t *BlockTracer) Begin() {}

// EnterFunc implements vm.Tracer.
func (t *BlockTracer) EnterFunc(f *cfg.Func) { t.m.Add(t.base[f.ID]) }

// Edge implements vm.Tracer.
func (t *BlockTracer) Edge(f *cfg.Func, e int) {
	t.m.Add(t.base[f.ID] + uint32(f.Edges[e].To))
}

// Ret implements vm.Tracer.
func (t *BlockTracer) Ret(*cfg.Func, int) {}

// NGramTracer hashes the window of the last n visited blocks into the
// map, the partial flow-sensitive feedback discussed in §VII.
type NGramTracer struct {
	m    *coverage.Map
	base []uint32
	n    int
	hist []uint32
	pos  int
}

// NewNGramTracer builds an n-gram tracer.
func NewNGramTracer(p *cfg.Program, m *coverage.Map, n int) *NGramTracer {
	return &NGramTracer{m: m, base: blockBase(p), n: n, hist: make([]uint32, n)}
}

// Begin implements vm.Tracer.
func (t *NGramTracer) Begin() {
	clear(t.hist)
	t.pos = 0
}

func (t *NGramTracer) visit(loc uint32) {
	t.hist[t.pos] = loc
	t.pos = (t.pos + 1) % t.n
	var h uint64 = 1469598103934665603
	for i := 0; i < t.n; i++ {
		h ^= uint64(t.hist[(t.pos+i)%t.n])
		h *= 1099511628211
	}
	t.m.Add(uint32(h))
}

// EnterFunc implements vm.Tracer.
func (t *NGramTracer) EnterFunc(f *cfg.Func) { t.visit(t.base[f.ID]) }

// Edge implements vm.Tracer.
func (t *NGramTracer) Edge(f *cfg.Func, e int) { t.visit(t.base[f.ID] + uint32(f.Edges[e].To)) }

// Ret implements vm.Tracer.
func (t *NGramTracer) Ret(*cfg.Func, int) {}
