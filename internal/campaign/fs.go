// Package campaign makes fuzzing campaigns durable: it serializes full
// fuzzer state (see fuzz.Snapshot) into versioned, checksummed
// checkpoints written atomically, resumes campaigns from the last good
// checkpoint — tolerating truncated or corrupt files by falling back to
// an older one — and persists unique crashing inputs and quarantined
// internal-fault inputs alongside. A resumed campaign reproduces, byte
// for byte, the final report of the same campaign run uninterrupted
// with the same seed.
//
// All filesystem access goes through the FS interface so the
// fault-injection harness (FaultFS) can exercise every recovery path —
// short writes, failed syncs, failed renames — deterministically in
// tests.
package campaign

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File checkpoint writing needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations durable campaigns perform.
// The zero-cost default is OSFS; tests substitute FaultFS.
type FS interface {
	MkdirAll(dir string) error
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	Remove(name string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// WriteFileAtomic writes data to path via a temp file in the same
// directory, syncing before an atomic rename, so a crash mid-write
// never leaves a partially written file under the final name. On any
// failure the temp file is removed and the previous contents of path
// (if any) are untouched.
func WriteFileAtomic(fs FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	n, err := f.Write(data)
	if err == nil && n < len(data) {
		err = io.ErrShortWrite
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return nil
}

// exists reports whether path is readable (used to skip rewriting
// already-persisted crash inputs).
func exists(fs FS, path string) bool {
	_, err := fs.ReadFile(path)
	return err == nil
}

// join is filepath.Join, re-exported for symmetry with FS paths.
func join(elem ...string) string { return filepath.Join(elem...) }
