package subjects

import "repro/internal/vm"

// mp3gain models an MP3 replay-gain analyzer: frame-sync scanning,
// bitrate table lookups, and a global-gain histogram. Bug mg-1 is the
// zero-day analogue from the paper's §V-A: it is found by the
// path-aware fuzzers but requires a VBR frame path to leave max_gain
// below the histogram base — a state edge coverage does not retain.
const mp3gainSrc = `
// mp3gain: MP3 frame analyzer.
// Frames: FF sync, hdr(1): bitrate_idx(hi 4 bits) | flags(lo 4 bits),
// gain byte, payload(4).

func frame_size(bitrate) {
    var sz = 144 * bitrate / 14; // arbitrary model constant; 112 -> 1152
    return sz;
}

func scan_frame(input, pos, st) {
    // st[0]=frames st[1]=max_gain st[2]=vbr_seen
    if (pos + 3 > len(input)) { return len(input); }
    var hdr = input[pos + 1];
    var gain = input[pos + 2];
    var bidx = hdr >> 4;
    var flags = hdr & 15;
    var bitrate_tab = alloc(16);
    bitrate_tab[1] = 32;  bitrate_tab[2] = 40;  bitrate_tab[3] = 48;
    bitrate_tab[4] = 56;  bitrate_tab[5] = 64;  bitrate_tab[6] = 80;
    bitrate_tab[7] = 96;  bitrate_tab[8] = 112; bitrate_tab[9] = 128;
    bitrate_tab[10] = 160; bitrate_tab[11] = 192; bitrate_tab[12] = 224;
    bitrate_tab[13] = 256; bitrate_tab[14] = 320;
    var br = bitrate_tab[bidx];
    var padding = frame_size(112) / br; // BUG mg-2: free-format (0) and reserved (15) rates are zero
    if (flags == 3 && bidx >= 12) {
        // BUG mg-1 (setup): the VBR high-bitrate path trusts the gain
        // byte as a signed offset from 64 without the clamp the normal
        // path applies.
        st[1] = gain - 64;
        st[2] = 1;
    } else {
        st[1] = max(gain, 48);
    }
    st[0] = st[0] + 1;
    return pos + 3 + padding % 4;
}

func histogram(st) {
    var hist = alloc(256);
    var idx = st[1] - 48;
    hist[idx] = st[0]; // BUG mg-1 (trigger): idx < 0 only via the VBR path
    return hist[idx];
}

func read_tail(input, pos) {
    // ID3v1-style tail probe.
    var t = input[len(input) - 1];
    if (t == 'G') {
        return input[len(input) + 2 - 8]; // BUG mg-3: short inputs read before the buffer
    }
    return 0;
}

func main(input) {
    if (len(input) < 4) { return 1; }
    var st = alloc(3);
    var pos = 0;
    while (pos + 1 < len(input)) {
        if (input[pos] == 255) {
            pos = scan_frame(input, pos, st);
        } else {
            pos = pos + 1;
        }
    }
    if (st[0] > 0) {
        histogram(st);
    }
    return read_tail(input, pos);
}
`

func init() {
	register(&Subject{
		Name:      "mp3gain",
		TypeLabel: "C",
		Source:    mp3gainSrc,
		Seeds: [][]byte{
			{255, 0x52, 100, 0, 0, 0, 0, 255, 0x91, 80, 1, 2, 3, 4},
			{1, 2, 3, 4, 5},
		},
		Bugs: []Bug{
			{
				ID: "mg-1-hist-neg-index",
				// VBR path: flags==3, bidx>=12, gain 10 -> max_gain -54,
				// histogram index -102.
				Witness:       []byte{255, 0xC3, 10, 0, 0, 0},
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "histogram",
				PathDependent: true,
				Comment: "the VBR high-bitrate frame path stores gain-64 unclamped; the " +
					"histogram index goes negative (the paper's mp3gain zero-day analogue)",
			},
			{
				ID:       "mg-2-free-format-div",
				Witness:  []byte{255, 0x00, 100, 0, 0, 0},
				WantKind: vm.KindDivByZero,
				WantFunc: "scan_frame",
				Comment:  "free-format bitrate index 0 has a zero table entry",
			},
			{
				ID:       "mg-3-tail-oob",
				Witness:  []byte{1, 2, 3, 'G'},
				WantKind: vm.KindOOBRead,
				WantFunc: "read_tail",
				Comment:  "ID3 tail probe reads before the buffer on short inputs",
			},
		},
	})
}
