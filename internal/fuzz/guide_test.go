package fuzz

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/analysis/interproc"
	"repro/internal/cfg"
	"repro/internal/instrument"
	"repro/internal/lang"
	"repro/internal/subjects"
	"repro/internal/vm"
)

// branchTracer records, per (function, block), the set of directions a
// conditional branch took during one execution.
type branchTracer struct {
	// dirs[fnName][block] -> 2-bit set: 1 = then taken, 2 = else taken.
	dirs map[string]map[int]int
	// decide[fnName][edge] -> (block, isThen) for branch edges.
	decide map[string]map[int]branchEdge
}

type branchEdge struct {
	block int
	then  bool
}

func newBranchTracer(prog *cfg.Program) *branchTracer {
	bt := &branchTracer{
		dirs:   make(map[string]map[int]int),
		decide: make(map[string]map[int]branchEdge),
	}
	for _, f := range prog.Funcs {
		m := make(map[int]branchEdge)
		for b := range f.Blocks {
			blk := &f.Blocks[b]
			if blk.Term.Kind != cfg.TermBr || blk.Term.Then == blk.Term.Else {
				continue
			}
			if blk.EdgeThen >= 0 {
				m[blk.EdgeThen] = branchEdge{block: b, then: true}
			}
			if blk.EdgeElse >= 0 {
				m[blk.EdgeElse] = branchEdge{block: b, then: false}
			}
		}
		bt.decide[f.Name] = m
	}
	return bt
}

func (bt *branchTracer) Begin()                 { bt.dirs = make(map[string]map[int]int) }
func (bt *branchTracer) EnterFunc(f *cfg.Func)  {}
func (bt *branchTracer) Ret(f *cfg.Func, b int) {}
func (bt *branchTracer) Edge(f *cfg.Func, e int) {
	be, ok := bt.decide[f.Name][e]
	if !ok {
		return
	}
	m := bt.dirs[f.Name]
	if m == nil {
		m = make(map[int]int)
		bt.dirs[f.Name] = m
	}
	if be.then {
		m[be.block] |= 1
	} else {
		m[be.block] |= 2
	}
}

// snapshotDirs deep-copies the recorded direction sets.
func (bt *branchTracer) snapshotDirs() map[string]map[int]int {
	out := make(map[string]map[int]int, len(bt.dirs))
	for fn, m := range bt.dirs {
		c := make(map[int]int, len(m))
		for b, d := range m {
			c[b] = d
		}
		out[fn] = c
	}
	return out
}

// guideCorpus builds a deterministic mixed corpus for a subject: its
// seed inputs, plus random data, plus randomly mutated seeds.
func guideCorpus(rng *rand.Rand, seeds [][]byte, n int) [][]byte {
	corpus := append([][]byte{}, seeds...)
	for i := 0; i < n; i++ {
		switch {
		case len(seeds) > 0 && i%2 == 0:
			base := seeds[rng.Intn(len(seeds))]
			mut := append([]byte{}, base...)
			for k := 0; k < 1+rng.Intn(4) && len(mut) > 0; k++ {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
			corpus = append(corpus, mut)
		default:
			buf := make([]byte, rng.Intn(24))
			rng.Read(buf)
			corpus = append(corpus, buf)
		}
	}
	return corpus
}

// TestGuideMaskSoundnessFuzz is the mask soundness contract, pinned
// fuzz-style: whenever flipping ONE input byte changes some branch's
// runtime outcome (both runs finishing normally), that branch's static
// fact must claim input dependency and its byte mask must contain the
// flipped offset (or be unbounded). A violation means the analysis
// under-approximated a dependency — the one direction it must never
// err in, since guided mutation restricts drawing to the mask.
func TestGuideMaskSoundnessFuzz(t *testing.T) {
	for _, subName := range []string{"flvmeta", "imginfo"} {
		sub := subjects.Get(subName)
		if sub == nil {
			t.Fatalf("subject %s missing", subName)
		}
		prog, err := sub.Program()
		if err != nil {
			t.Fatal(err)
		}
		fs := interproc.For(prog, prog.ByName["main"])
		bt := newBranchTracer(prog)
		lim := vm.DefaultLimits()
		run := func(in []byte) (map[string]map[int]int, vm.Status) {
			res := vm.Run(prog, "main", in, bt, lim)
			return bt.snapshotDirs(), res.Status
		}

		rng := rand.New(rand.NewSource(11))
		diffs := 0
		for _, base := range guideCorpus(rng, sub.Seeds, 40) {
			if len(base) == 0 {
				continue
			}
			baseDirs, st := run(base)
			if st != vm.StatusOK {
				continue
			}
			for trial := 0; trial < 6; trial++ {
				pos := rng.Intn(len(base))
				flipped := append([]byte{}, base...)
				flipped[pos] ^= byte(1 << rng.Intn(8))
				gotDirs, st2 := run(flipped)
				if st2 != vm.StatusOK {
					continue
				}
				for fn, blocks := range baseDirs {
					fi, ok := prog.ByName[fn]
					if !ok {
						continue
					}
					ff := fs.Fns[fi]
					for b, d := range blocks {
						d2 := gotDirs[fn][b]
						if d2 == 0 || d == d2 {
							continue // not reached after flip, or same outcome
						}
						diffs++
						bf := ff.Branch(b)
						if bf == nil {
							t.Fatalf("%s: no fact for branch %s b%d whose outcome changed", subName, fn, b)
						}
						if !bf.Dep {
							t.Errorf("%s: flipping byte %d changed branch %s b%d (dirs %d->%d) but the fact says input-independent",
								subName, pos, fn, b, d, d2)
							continue
						}
						if !bf.Bytes.All && !bf.Bytes.Contains(int64(pos)) {
							t.Errorf("%s: flipping byte %d changed branch %s b%d but mask %s excludes it",
								subName, pos, fn, b, bf.Bytes.String())
						}
					}
				}
			}
		}
		if diffs == 0 {
			t.Fatalf("%s: no byte flip ever changed a branch outcome — the test is vacuous", subName)
		}
		t.Logf("%s: %d branch-outcome changes checked against masks", subName, diffs)
	}
}

// TestInfeasiblePathsNeverHit drives the differential corpus through
// the standalone Ball-Larus profiler and asserts no statically
// infeasible path ID is ever executed — the under-approximation side
// of the soundness contract (facts may miss infeasible paths, but may
// never brand a feasible one).
func TestInfeasiblePathsNeverHit(t *testing.T) {
	for _, subName := range []string{"flvmeta", "imginfo", "jhead", "cflow"} {
		sub := subjects.Get(subName)
		if sub == nil {
			t.Fatalf("subject %s missing", subName)
		}
		prog, err := sub.Program()
		if err != nil {
			t.Fatal(err)
		}
		fs := interproc.For(prog, prog.ByName["main"])
		infeasible := make(map[string]map[uint64]bool)
		for fi, f := range prog.Funcs {
			ff := fs.Fns[fi]
			if ff == nil || !ff.Walked {
				continue
			}
			m := make(map[uint64]bool, len(ff.Infeasible))
			for _, id := range ff.Infeasible {
				m[id] = true
			}
			infeasible[f.Name] = m
		}

		prof, err := instrument.NewProfiler(prog)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(23))
		for _, in := range guideCorpus(rng, sub.Seeds, 120) {
			prof.Profile("main", in, vm.DefaultLimits())
		}
		for _, pc := range prof.Counts() {
			if infeasible[pc.Func][pc.PathID] {
				t.Errorf("%s: statically infeasible path %s#%d executed %d times",
					subName, pc.Func, pc.PathID, pc.Count)
			}
		}
	}
}

// TestGuidedCampaignDeterministic: with -analysis-guide on, the same
// seed must reproduce the identical campaign, for every feedback the
// guide projects branches onto.
func TestGuidedCampaignDeterministic(t *testing.T) {
	p := compileT(t, fig1)
	for _, fb := range []instrument.Feedback{instrument.FeedbackPath, instrument.FeedbackEdge, instrument.FeedbackBlock} {
		run := func() *Report {
			f, err := New(p, Options{Feedback: fb, Seed: 42, MapSize: 1 << 12, AnalysisGuide: true})
			if err != nil {
				t.Fatal(err)
			}
			f.AddSeed([]byte("hello"))
			f.Fuzz(15000)
			return f.Report()
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("fb=%v: guided campaign not deterministic: execs %d vs %d, queue %d vs %d",
				fb, a.Stats.Execs, b.Stats.Execs, a.QueueLen, b.QueueLen)
		}
	}
}

// TestGuidedRestoredRunMatchesUninterrupted extends the resume
// byte-identity guarantee to guided campaigns: guide state is derived,
// so interrupting and restoring mid-campaign must not perturb anything.
func TestGuidedRestoredRunMatchesUninterrupted(t *testing.T) {
	const budget = 20000
	opts := snapOpts()
	opts.AnalysisGuide = true
	newGuided := func() *Fuzzer {
		f, err := New(compileT(t, fig1), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range snapSeeds {
			f.AddSeed(s)
		}
		return f
	}

	base := newGuided()
	base.Fuzz(budget)
	want := base.Report()

	f := newGuided()
	var snap *Snapshot
	f.SetCheckpointHook(func(f *Fuzzer) bool {
		if f.Execs() >= budget/3 {
			snap = f.Snapshot()
			return false
		}
		return true
	})
	f.Fuzz(budget)
	if snap == nil {
		t.Fatal("hook never fired")
	}
	f2, err := Restore(f.prog, opts, snap)
	if err != nil {
		t.Fatal(err)
	}
	f2.Fuzz(budget)
	got := f2.Report()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("guided resumed report differs:\n got: execs=%d queue=%d bugs=%v\nwant: execs=%d queue=%d bugs=%v",
			got.Stats.Execs, got.QueueLen, got.BugKeys(),
			want.Stats.Execs, want.QueueLen, want.BugKeys())
	}
}

// TestGuideSkipCmpVeto: an observation matching an input-independent
// static comparison site is skipped, but any matching input-dependent
// site vetoes the skip, and an unmatched observation is never skipped.
func TestGuideSkipCmpVeto(t *testing.T) {
	p := compileT(t, `
func main(input) {
    if (len(input) < 1) { return 0; }
    var i = 0;
    var s = 0;
    while (i < 3) { s = s + i; i = i + 1; }
    if (input[0] == 7) { s = s + 1; }
    return s;
}`)
	f, err := New(p, Options{Feedback: instrument.FeedbackEdge, Seed: 1, MapSize: 1 << 12, AnalysisGuide: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.guide == nil {
		t.Fatal("guide not constructed")
	}
	// The loop bound i < 3 is input-independent: skip.
	if !f.guide.skipCmp(vm.CmpObs{A: 1, B: 3, Op: lang.LT, Taken: true}) {
		t.Error("loop-bound comparison not skipped")
	}
	// input[0] == 7 is input-dependent: must not skip.
	if f.guide.skipCmp(vm.CmpObs{A: 200, B: 7, Op: lang.EQ}) {
		t.Error("input-dependent comparison skipped")
	}
	// No static site matches: never skip (could be anything).
	if f.guide.skipCmp(vm.CmpObs{A: 5, B: 99, Op: lang.GE}) {
		t.Error("unmatched observation skipped")
	}
}

// TestGuideMaskFocusesMutations: with a guided fuzzer on a program
// whose interesting branches depend only on the first bytes, the
// queue-entry mask must cover those bytes and the masked mutator must
// draw positions inside the mask when the candidate is long enough.
func TestGuideMaskFocusesMutations(t *testing.T) {
	p := compileT(t, `
func main(input) {
    if (len(input) < 8) { return 0; }
    if (input[1] * input[2] == 3127) {
        return 1;
    }
    return 3;
}`)
	f, err := New(p, Options{Feedback: instrument.FeedbackEdge, Seed: 9, MapSize: 1 << 12, AnalysisGuide: true})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte("AAAAAAAA"))
	// The product condition resists cmplog substitution (the observed
	// operand 3127 never appears literally in the input), so its virgin
	// then-side keeps the branch on the frontier.
	f.Fuzz(2000)
	if f.guide == nil || len(f.guide.branches) == 0 {
		t.Fatal("guide has no projected branches")
	}
	f.updateGuide()
	var mask []interproc.ByteRange
	var total int64
	for _, e := range f.queue {
		if m, tot := f.guideMaskFor(e); tot > 0 {
			mask, total = m, tot
			break
		}
	}
	if total == 0 {
		t.Skip("no frontier branch with a bounded mask at this budget")
	}
	if total > 8 {
		t.Fatalf("mask unexpectedly wide: %d offsets in %v", total, mask)
	}
	m := &mutator{rng: rand.New(rand.NewSource(5)), maxLen: 64, mask: mask, maskTotal: total}
	for i := 0; i < 200; i++ {
		pos := m.pos(64)
		in := false
		for _, r := range mask {
			if int64(pos) >= r.Lo && int64(pos) <= r.Hi {
				in = true
			}
		}
		if !in {
			t.Fatalf("masked pos draw %d outside mask %v", pos, mask)
		}
	}
}

// TestGuideDefaultOffDrawsIdentical: a nil mask must reproduce the
// exact unguided RNG stream — one Intn per positional draw.
func TestGuideDefaultOffDrawsIdentical(t *testing.T) {
	a := &mutator{rng: rand.New(rand.NewSource(77)), maxLen: 64}
	b := rand.New(rand.NewSource(77))
	for i := 0; i < 500; i++ {
		if got, want := a.pos(40), b.Intn(40); got != want {
			t.Fatalf("draw %d: masked-off pos %d != plain Intn %d", i, got, want)
		}
	}
}
