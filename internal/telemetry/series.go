package telemetry

import "time"

// Point is one time-series sample: the cumulative counters at sample
// time plus the rates derived from the interval since the previous
// sample. Rates are per second of wall-clock time.
type Point struct {
	Elapsed time.Duration `json:"elapsed_ns"`
	Execs   int64         `json:"execs"`

	ExecsPerSec    float64 `json:"execs_per_sec"`
	NoveltyPerSec  float64 `json:"novelty_per_sec"`
	CrashesPerSec  float64 `json:"crashes_per_sec"`
	TimeoutsPerSec float64 `json:"timeouts_per_sec"`

	CoverageCount int64   `json:"coverage_count"`
	CoverageBits  int64   `json:"coverage_bits"`
	MapDensity    float64 `json:"map_density"`

	QueueLen       int64 `json:"queue_len"`
	Favored        int64 `json:"favored"`
	PendingTotal   int64 `json:"pending_total"`
	PendingFavored int64 `json:"pending_favored"`
	MaxDepth       int64 `json:"max_depth"`
	CurItem        int64 `json:"cur_item"`
	Cycles         int64 `json:"cycles"`

	Crashes        int64 `json:"crashes"`
	Timeouts       int64 `json:"timeouts"`
	UniqueBugs     int64 `json:"unique_bugs"`
	UniqueCrashes  int64 `json:"unique_crashes"`
	InternalFaults int64 `json:"internal_faults"`
}

// derivePoint folds a snapshot (and the previous sampled one, which
// may be nil) into a series point. With no predecessor, rates are
// computed over the snapshot's whole elapsed time, so the very first
// sample of a campaign is already meaningful.
func derivePoint(prev, s *Snapshot) Point {
	p := Point{
		Elapsed:        s.Elapsed,
		Execs:          s.Execs,
		CoverageCount:  s.CoverageCount,
		CoverageBits:   s.CoverageBits,
		MapDensity:     s.MapDensity(),
		QueueLen:       s.QueueLen,
		Favored:        s.Favored,
		PendingTotal:   s.PendingTotal,
		PendingFavored: s.PendingFavored,
		MaxDepth:       s.MaxDepth,
		CurItem:        s.CurItem,
		Cycles:         s.Cycles,
		Crashes:        s.CrashExecs,
		Timeouts:       s.Timeouts,
		UniqueBugs:     s.UniqueBugs,
		UniqueCrashes:  s.UniqueCrashes,
		InternalFaults: s.InternalFaults,
	}
	var (
		dt                              time.Duration
		execs, added, crashes, timeouts int64
	)
	if prev == nil {
		dt = s.Elapsed
		execs, added, crashes, timeouts = s.Execs, s.Added, s.CrashExecs, s.Timeouts
	} else {
		dt = s.Elapsed - prev.Elapsed
		execs = s.Execs - prev.Execs
		added = s.Added - prev.Added
		crashes = s.CrashExecs - prev.CrashExecs
		timeouts = s.Timeouts - prev.Timeouts
	}
	if sec := dt.Seconds(); sec > 0 {
		p.ExecsPerSec = float64(execs) / sec
		p.NoveltyPerSec = float64(added) / sec
		p.CrashesPerSec = float64(crashes) / sec
		p.TimeoutsPerSec = float64(timeouts) / sec
	}
	return p
}

// series is a fixed-capacity ring of points.
type series struct {
	buf   []Point
	next  int
	count int
}

func newSeries(capacity int) *series {
	return &series{buf: make([]Point, capacity)}
}

func (s *series) push(p Point) {
	s.buf[s.next] = p
	s.next = (s.next + 1) % len(s.buf)
	if s.count < len(s.buf) {
		s.count++
	}
}

// points returns the retained samples, oldest first (a copy).
func (s *series) points() []Point {
	out := make([]Point, 0, s.count)
	start := s.next - s.count
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.count; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

func (s *series) last() (Point, bool) {
	if s.count == 0 {
		return Point{}, false
	}
	i := s.next - 1
	if i < 0 {
		i += len(s.buf)
	}
	return s.buf[i], true
}
