package fuzz

import (
	"strings"
	"testing"
	"time"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error; "" means valid
	}{
		{"zero options", Options{}, ""},
		{"negative map size", Options{MapSize: -1}, "MapSize"},
		{"non-power-of-two map size", Options{MapSize: 3000}, "power of two"},
		{"negative max input len", Options{MaxInputLen: -5}, "MaxInputLen"},
		{"negative history samples", Options{HistorySamples: -1}, "HistorySamples"},
		{"negative status period", Options{StatusPeriod: -time.Second}, "StatusPeriod"},
		{"negative status every", Options{StatusEvery: -1}, "StatusEvery"},
		{"unknown engine", Options{Engine: Engine(99)}, "engine"},
		{"bytecode engine", Options{Engine: EngineBytecode}, ""},
		{"interp engine", Options{Engine: EngineInterp}, ""},
		{"cgt engine", Options{Engine: EngineCGT}, ""},
		{"unknown profile", Options{Profile: Profile(99)}, "profile"},
		{
			"dict token exceeds max input len",
			Options{MaxInputLen: 4, Dict: [][]byte{[]byte("ok"), []byte("too-long-token")}},
			"exceeds MaxInputLen",
		},
		{
			"dict token within max input len",
			Options{MaxInputLen: 16, Dict: [][]byte{[]byte("ok")}},
			"",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestParseEngine pins the flag surface: every engine name round-trips
// through ParseEngine/String, and the unknown-name error enumerates
// every valid spelling so CLI users see the full menu.
func TestParseEngine(t *testing.T) {
	round := map[string]Engine{
		"":            EngineAuto,
		"auto":        EngineAuto,
		"bytecode":    EngineBytecode,
		"interp":      EngineInterp,
		"interpreter": EngineInterp,
		"cgt":         EngineCGT,
	}
	for name, want := range round {
		got, err := ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	for _, e := range []Engine{EngineBytecode, EngineInterp, EngineCGT} {
		if back, err := ParseEngine(e.String()); err != nil || back != e {
			t.Errorf("engine %v does not round-trip through its String %q", e, e.String())
		}
	}
	_, err := ParseEngine("turbo")
	if err == nil {
		t.Fatal("ParseEngine accepted an unknown engine")
	}
	for _, name := range []string{"auto", "bytecode", "cgt", "interp"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ParseEngine error %q does not list engine %q", err, name)
		}
	}
}

// TestNewRejectsInvalidOptions pins that validation runs at
// construction: a contradictory Options bundle fails fast instead of
// corrupting a campaign later.
func TestNewRejectsInvalidOptions(t *testing.T) {
	prog := compileT(t, `func main(input) { return 0; }`)
	if _, err := New(prog, Options{MapSize: -2}); err == nil {
		t.Fatal("New accepted a negative MapSize")
	}
	if _, err := New(prog, Options{MaxInputLen: 4, Dict: [][]byte{[]byte("oversized")}}); err == nil {
		t.Fatal("New accepted a dict token longer than MaxInputLen")
	}
	if _, err := New(prog, Options{}); err != nil {
		t.Fatalf("New rejected valid zero options: %v", err)
	}
}
