package bytecode

import (
	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/lang"
)

// Compile lowers prog once into flat bytecode with spec's probes
// inlined. The returned program is immutable; compile it once per
// (program, feedback) pair and share it across machines.
//
// Layout per function: entry probes (the EnterFunc event), then each
// basic block as [lowered instructions, opStepChk, terminator]. Edge
// probes for unconditional jumps are inlined before the opJmp; for
// conditional branches each probed edge gets a small trampoline
// (probes + opJmp) so the branch pays nothing for the untaken side,
// and edges with no probes are branched to directly.
//
// Compile panics when spec.Verify detects an invariant violation; that
// only happens when an optimization or lowering pass is broken, so
// callers that want the error instead use CompileChecked.
func Compile(prog *cfg.Program, spec Spec) *Program {
	p, err := CompileChecked(prog, spec)
	if err != nil {
		panic(err)
	}
	return p
}

// CompileChecked is Compile returning verification failures as errors.
// With spec.Opt set, each function is rewritten by the optimization
// passes (constant folding, dead-store elimination) before lowering,
// and decided branches/interval-unreachable blocks are folded away at
// lowering time. With spec.Verify set, the IR verifier runs after every
// optimization pass and the bytecode structural verifier runs after
// lowering and again after fusion.
func CompileChecked(prog *cfg.Program, spec Spec) (*Program, error) {
	c := &compiler{
		out:     &Program{src: prog, spec: spec, fns: make([]fnInfo, len(prog.Funcs))},
		layouts: make([]fnLayout, len(prog.Funcs)),
	}
	for fi, f := range prog.Funcs {
		lf := f
		var ii *analysis.Intervals
		if spec.Opt {
			var err error
			lf, ii, err = optimizeFunc(f, spec.Verify)
			if err != nil {
				return nil, err
			}
		}
		c.fn(fi, lf, c.fnSpec(fi), ii)
	}
	if spec.Verify {
		if err := c.verify(); err != nil {
			return nil, err
		}
	}
	for fi := range prog.Funcs {
		c.fuse(int(c.out.fns[fi].entryPC), int(c.layouts[fi].end))
	}
	// With every entry point final, fold ProbePath's entry push into
	// the calls themselves (the entry function still executes its own
	// push when the machine enters it directly).
	if spec.Kind == ProbePath {
		code := c.out.code
		for i := range code {
			if code[i].op == opCall && code[c.out.fns[code[i].imm].entryPC].op == opProbePush {
				code[i].op = opCallPush
			}
		}
	}
	if spec.Verify {
		if err := c.verifyFused(); err != nil {
			return nil, err
		}
	}
	return c.out, nil
}

type compiler struct {
	out *Program
	// layouts records, per function, where its blocks and trampolines
	// landed — the bytecode verifier's ground truth for jump targets.
	layouts []fnLayout
}

// fnLayout is the code-layout record of one lowered function.
type fnLayout struct {
	// blockStart is the pc of each basic block (-1 when the block was
	// eliminated as interval-unreachable).
	blockStart []int32
	// trampStart lists the pcs of the conditional-branch probe
	// trampolines emitted after the function body.
	trampStart []int32
	// end is one past the function's last instruction.
	end int32
}

func (c *compiler) fnSpec(fi int) FnSpec {
	if fi < len(c.out.spec.Fns) {
		return c.out.spec.Fns[fi]
	}
	return FnSpec{}
}

// jmpFix is a pending unconditional-jump target (code[pc].a = start of
// block).
type jmpFix struct {
	pc    int
	block int
}

// brPend is a pending conditional branch: both sides resolve to either
// a block start or a freshly emitted probe trampoline.
type brPend struct {
	pc                   int
	thenBlock, elseBlock int
	thenEdge, elseEdge   int
}

// foldedBr reports whether blk's conditional branch is decided by the
// interval analysis — exactly one outgoing edge feasible — returning
// the taken edge index and target block. A block whose every outgoing
// edge is infeasible (it faults before its terminator) is lowered as a
// normal branch: it never executes past the fault, and keeping both
// targets avoids dangling references.
func foldedBr(blk *cfg.Block, ii *analysis.Intervals) (edge, target int, ok bool) {
	if ii == nil {
		return 0, 0, false
	}
	tf, ef := ii.EdgeFeasible[blk.EdgeThen], ii.EdgeFeasible[blk.EdgeElse]
	switch {
	case tf && !ef:
		return blk.EdgeThen, blk.Term.Then, true
	case ef && !tf:
		return blk.EdgeElse, blk.Term.Else, true
	}
	return 0, 0, false
}

// lowerReach decides which blocks get lowered: without interval
// analysis, all of them; otherwise the closure of the entry under the
// control flow the lowering will actually emit (folded branches follow
// only their taken side). By construction this is exactly the set of
// blocks an emitted terminator can reference, so eliminated blocks are
// never jump targets.
func lowerReach(f *cfg.Func, ii *analysis.Intervals) []bool {
	reach := make([]bool, len(f.Blocks))
	if ii == nil {
		for b := range reach {
			reach[b] = true
		}
		return reach
	}
	stack := []int{0}
	reach[0] = true
	push := func(b int) {
		if !reach[b] {
			reach[b] = true
			stack = append(stack, b)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk := &f.Blocks[b]
		switch blk.Term.Kind {
		case cfg.TermJmp:
			push(blk.Term.Then)
		case cfg.TermBr:
			if _, target, ok := foldedBr(blk, ii); ok {
				push(target)
			} else {
				push(blk.Term.Then)
				push(blk.Term.Else)
			}
		}
	}
	return reach
}

func (c *compiler) fn(fi int, f *cfg.Func, fs FnSpec, ii *analysis.Intervals) {
	out := c.out
	out.fns[fi] = fnInfo{
		name:      f.Name,
		entryPC:   int32(len(out.code)),
		frameSize: int32(f.FrameSize),
		nparams:   int32(f.NParams),
		pos:       f.Pos,
	}
	c.emitEnterProbes(fs)

	lower := lowerReach(f, ii)
	blockStart := make([]int32, len(f.Blocks))
	var jmps []jmpFix
	var brs []brPend
	for b := range f.Blocks {
		blk := &f.Blocks[b]
		if !lower[b] {
			// Dead-block elimination: no feasible path reaches b, so no
			// lowered terminator references it and no code is emitted.
			blockStart[b] = -1
			continue
		}
		blockStart[b] = int32(len(out.code))
		for i := range blk.Instrs {
			c.instr(&blk.Instrs[i])
		}
		c.emit(instr{op: opStepChk}, blk.Term.Pos)
		switch blk.Term.Kind {
		case cfg.TermJmp:
			c.emitEdgeProbes(f, fs, blk.EdgeThen, blk.Term.Pos)
			jmps = append(jmps, jmpFix{pc: len(out.code), block: blk.Term.Then})
			c.emit(instr{op: opJmp}, blk.Term.Pos)
		case cfg.TermBr:
			if e, target, ok := foldedBr(blk, ii); ok {
				// Branch folding: the untaken side is infeasible, so the
				// branch lowers like an unconditional jump, taken-edge
				// probes inlined (the same events fire in the same order).
				c.emitEdgeProbes(f, fs, e, blk.Term.Pos)
				jmps = append(jmps, jmpFix{pc: len(out.code), block: target})
				c.emit(instr{op: opJmp}, blk.Term.Pos)
			} else {
				brs = append(brs, brPend{
					pc:        len(out.code),
					thenBlock: blk.Term.Then, elseBlock: blk.Term.Else,
					thenEdge: blk.EdgeThen, elseEdge: blk.EdgeElse,
				})
				c.emit(instr{op: opBr, a: int32(blk.Term.Cond)}, blk.Term.Pos)
			}
		case cfg.TermRet:
			c.emitRetProbes(fs, b, blk.Term.Pos)
			c.emit(instr{op: opRet, a: int32(blk.Term.Val)}, blk.Term.Pos)
		}
	}

	// Conditional-branch targets: trampolines are appended after the
	// function body, so block starts are final by now.
	var tramps []int32
	for _, br := range brs {
		thenPC := c.edgeTarget(f, fs, br.thenEdge, blockStart[br.thenBlock], &tramps)
		elsePC := c.edgeTarget(f, fs, br.elseEdge, blockStart[br.elseBlock], &tramps)
		out.code[br.pc].b = thenPC
		out.code[br.pc].dst = elsePC
	}
	for _, j := range jmps {
		out.code[j.pc].a = blockStart[j.block]
	}
	c.layouts[fi] = fnLayout{
		blockStart: blockStart,
		trampStart: tramps,
		end:        int32(len(out.code)),
	}
}

// fuse rewrites the function's code (body and trampolines, which all
// fixups have already resolved) with superinstructions. A fused head
// takes the consumed slots' operands; the consumed slots stay in place
// as dead code so jump targets and the per-pc pos table never move.
// Jumps only ever target block starts and trampoline starts — a block
// start is its block's first instruction (never a terminator, probe,
// or a const feeding a consumer in the same block) and a trampoline
// start is a probe, so every head below is either not a target or the
// first slot of its pattern.
func (c *compiler) fuse(start, end int) {
	code := c.out.code
	for k := start; k < end-1; k++ {
		in, next := &code[k], &code[k+1]
		switch in.op {
		case opStepChk:
			switch next.op {
			case opBr:
				*in = instr{op: opStepBr, dst: next.dst, a: next.a, b: next.b}
				k++
			case opJmp:
				*in = instr{op: opStepJmp, a: next.a}
				k++
			case opRet:
				*in = instr{op: opStepRet, a: next.a}
				k++
			case opProbeAdd:
				if k+2 < end && code[k+2].op == opJmp {
					*in = instr{op: opStepAddJmp, imm: next.imm, a: code[k+2].a}
					k += 2
				}
			case opProbeInc:
				if k+2 < end && code[k+2].op == opJmp {
					*in = instr{op: opStepIncJmp, imm: next.imm, a: code[k+2].a}
					k += 2
				}
			case opProbeBack:
				if k+2 < end && code[k+2].op == opJmp {
					*in = instr{op: opStepBackJmp, a: next.a, b: next.b, imm: next.imm, dst: code[k+2].a}
					k += 2
				}
			case opProbeRetPath:
				if k+2 < end && code[k+2].op == opRet {
					*in = instr{op: opStepRetPathRet, a: next.a, imm: next.imm, b: code[k+2].a}
					k += 2
				}
			case opProbePAFlush:
				if k+2 < end && code[k+2].op == opRet {
					*in = instr{op: opStepFlushRet, a: code[k+2].a}
					k += 2
				}
			}
		case opProbeAdd:
			if next.op == opJmp {
				*in = instr{op: opAddJmp, imm: in.imm, a: next.a}
				k++
			}
		case opProbeInc:
			if next.op == opJmp {
				*in = instr{op: opIncJmp, imm: in.imm, a: next.a}
				k++
			}
		case opProbeBack:
			if next.op == opJmp {
				*in = instr{op: opBackJmp, a: in.a, b: in.b, imm: in.imm, dst: next.a}
				k++
			}
		}
	}
	// Second sweep, after block exits are fused: comparisons (and the
	// constants feeding them) folded into the opStepBr that branches
	// on their result, plus the remaining const-feeds-consumer pairs.
	for k := start; k < end-1; k++ {
		in, next := &code[k], &code[k+1]
		switch in.op {
		case opEq, opNe, opLt, opLe, opGt, opGe:
			if next.op == opStepBr && next.a == in.dst {
				in.op = opEqStepBr + (in.op - opEq)
				k++
			}
		case opConst:
			t := in.dst
			var fop uint8
			skip := 1
			switch next.op {
			case opEq, opNe, opLt, opLe, opGt, opGe:
				if next.b == t && next.a != t {
					fop = opConstEq + (next.op - opEq)
					if k+2 < end && code[k+2].op == opStepBr && code[k+2].a == next.dst {
						fop = opConstEqStepBr + (next.op - opEq)
						skip = 2
					}
				}
			case opAdd:
				if next.b == t && next.a != t {
					fop, in.a = opConstAdd, next.a
				} else if next.a == t && next.b != t {
					fop, in.a = opConstAdd, next.b
				}
			case opSub:
				if next.b == t && next.a != t {
					fop, in.a = opConstSub, next.a
				}
			case opLoad:
				if next.b == t && next.a != t {
					fop = opConstLoad
				}
			}
			if fop != 0 {
				in.op = fop
				k += skip
			}
		}
	}
}

func (c *compiler) emit(in instr, pos lang.Pos) {
	c.out.code = append(c.out.code, in)
	c.out.pos = append(c.out.pos, pos)
}

// emitEdgeProbes inlines edge e's probes at the current position (used
// for unconditional jumps, where there is no untaken side to protect).
func (c *compiler) emitEdgeProbes(f *cfg.Func, fs FnSpec, e int, pos lang.Pos) {
	for _, p := range c.edgeProbes(f, fs, e) {
		c.emit(p, pos)
	}
}

// edgeTarget resolves one conditional-branch side: straight to the
// block when the edge carries no probes, else through a trampoline
// whose start is recorded in tramps for the bytecode verifier.
func (c *compiler) edgeTarget(f *cfg.Func, fs FnSpec, e int, blockPC int32, tramps *[]int32) int32 {
	probes := c.edgeProbes(f, fs, e)
	if len(probes) == 0 {
		return blockPC
	}
	start := int32(len(c.out.code))
	pos := lang.Pos{}
	for _, p := range probes {
		c.emit(p, pos)
	}
	c.emit(instr{op: opJmp, a: blockPC}, pos)
	*tramps = append(*tramps, start)
	return start
}

// emitEnterProbes lowers the EnterFunc tracer event.
func (c *compiler) emitEnterProbes(fs FnSpec) {
	switch c.out.spec.Kind {
	case ProbePath:
		c.emit(instr{op: opProbePush}, lang.Pos{})
	case ProbeBlock:
		c.emit(instr{op: opProbeAdd, imm: int64(fs.Base)}, lang.Pos{})
	case ProbeNGram:
		c.emit(instr{op: opProbeVisit, imm: int64(fs.Base)}, lang.Pos{})
	case ProbePathAFL:
		if fs.Tracked {
			c.emit(instr{op: opProbePAEnter, imm: int64(fs.Salt)}, lang.Pos{})
		}
	}
}

// edgeProbes lowers the Edge tracer event for edge e of f.
func (c *compiler) edgeProbes(f *cfg.Func, fs FnSpec, e int) []instr {
	switch c.out.spec.Kind {
	case ProbeEdge, ProbePathAFL:
		return []instr{{op: opProbeAdd, imm: int64(fs.Base + uint32(e))}}
	case ProbeBlock:
		return []instr{{op: opProbeAdd, imm: int64(fs.Base + uint32(f.Edges[e].To))}}
	case ProbeNGram:
		return []instr{{op: opProbeVisit, imm: int64(fs.Base + uint32(f.Edges[e].To))}}
	case ProbePath:
		if fs.HashMode {
			if f.BackEdge[e] {
				return []instr{{op: opProbeBack, a: int32(fs.Salt), b: c.backVal(0)}}
			}
			return []instr{{op: opProbeHashEdge, imm: int64(e + 1)}}
		}
		if act, ok := fs.Back[e]; ok {
			return []instr{{op: opProbeBack, a: int32(fs.Salt), imm: act.EndInc, b: c.backVal(act.StartVal)}}
		}
		if inc := fs.EdgeInc[e]; inc != 0 {
			// Spanning-tree placement pays off here: tree edges carry a
			// zero increment and compile to no probe at all.
			return []instr{{op: opProbeInc, imm: inc}}
		}
		return nil
	}
	return nil
}

// backVal interns one opProbeBack restart value and returns its index
// in the program's side table.
func (c *compiler) backVal(v int64) int32 {
	idx := int32(len(c.out.backVals))
	c.out.backVals = append(c.out.backVals, v)
	return idx
}

// emitRetProbes lowers the Ret tracer event for block b.
func (c *compiler) emitRetProbes(fs FnSpec, b int, pos lang.Pos) {
	switch c.out.spec.Kind {
	case ProbePath:
		var inc int64
		if !fs.HashMode {
			inc = fs.RetInc[b]
		}
		c.emit(instr{op: opProbeRetPath, a: int32(fs.Salt), imm: inc}, pos)
	case ProbePathAFL:
		if fs.Tracked {
			c.emit(instr{op: opProbePAFlush}, pos)
		}
	}
}

// instr lowers one cfg instruction to a specialised opcode.
func (c *compiler) instr(in *cfg.Instr) {
	switch in.Op {
	case cfg.OpConst:
		c.emit(instr{op: opConst, dst: int32(in.Dst), imm: in.Imm}, in.Pos)
	case cfg.OpStr:
		cells := make([]int64, len(in.Str))
		for i := 0; i < len(in.Str); i++ {
			cells[i] = int64(in.Str[i])
		}
		idx := len(c.out.strCells)
		c.out.strCells = append(c.out.strCells, cells)
		c.emit(instr{op: opStr, dst: int32(in.Dst), imm: int64(idx)}, in.Pos)
	case cfg.OpMove:
		c.emit(instr{op: opMove, dst: int32(in.Dst), a: int32(in.A)}, in.Pos)
	case cfg.OpBin:
		op := binOpcode(in.Sub)
		c.emit(instr{op: op, dst: int32(in.Dst), a: int32(in.A), b: int32(in.B), imm: int64(in.Sub)}, in.Pos)
	case cfg.OpUn:
		var op uint8
		switch in.Sub {
		case lang.MINUS:
			op = opNeg
		case lang.NOT:
			op = opNot
		case lang.TILDE:
			op = opCompl
		default:
			// The interpreter leaves the destination untouched for an
			// unknown unary operator but still charges the step.
			op = opNop
		}
		c.emit(instr{op: op, dst: int32(in.Dst), a: int32(in.A)}, in.Pos)
	case cfg.OpLoad:
		c.emit(instr{op: opLoad, dst: int32(in.Dst), a: int32(in.A), b: int32(in.B)}, in.Pos)
	case cfg.OpStore:
		c.emit(instr{op: opStore, dst: int32(in.C), a: int32(in.A), b: int32(in.B)}, in.Pos)
	case cfg.OpCall:
		off := len(c.out.argSlots)
		for _, s := range in.Args {
			c.out.argSlots = append(c.out.argSlots, int32(s))
		}
		c.emit(instr{op: opCall, dst: int32(in.Dst), a: int32(off), b: int32(len(in.Args)), imm: int64(in.Callee)}, in.Pos)
	case cfg.OpBuiltin:
		c.builtin(in)
	default:
		// Unknown opcodes are counted no-ops, exactly as the
		// interpreter's instruction switch treats them.
		c.emit(instr{op: opNop}, in.Pos)
	}
}

func binOpcode(k lang.Kind) uint8 {
	switch k {
	case lang.PLUS:
		return opAdd
	case lang.MINUS:
		return opSub
	case lang.STAR:
		return opMul
	case lang.SLASH:
		return opDiv
	case lang.PCT:
		return opMod
	case lang.AMP:
		return opBand
	case lang.PIPE:
		return opBor
	case lang.CARET:
		return opBxor
	case lang.SHL:
		return opShl
	case lang.SHR:
		return opShr
	case lang.EQ:
		return opEq
	case lang.NE:
		return opNe
	case lang.LT:
		return opLt
	case lang.LE:
		return opLe
	case lang.GT:
		return opGt
	case lang.GE:
		return opGe
	}
	return opBadBin
}

func (c *compiler) builtin(in *cfg.Instr) {
	// arg mirrors the interpreter's unchecked Args indexing: a builtin
	// somehow lowered with missing arguments fails at runtime if (and
	// only if) it executes, never at compile time. The front end's
	// arity checking makes this unreachable in practice.
	arg := func(i int) int32 {
		if i < len(in.Args) {
			return int32(in.Args[i])
		}
		return -1
	}
	base := instr{dst: int32(in.Dst)}
	switch in.Callee {
	case cfg.BLen:
		base.op, base.a = opLen, arg(0)
	case cfg.BAlloc:
		base.op, base.a = opAlloc, arg(0)
	case cfg.BAssert:
		base.op, base.a = opAssert, arg(0)
	case cfg.BAbort:
		base.op = opAbort
	case cfg.BAbs:
		base.op, base.a = opAbs, arg(0)
	case cfg.BMin:
		base.op, base.a, base.b = opMin, arg(0), arg(1)
	case cfg.BMax:
		base.op, base.a, base.b = opMax, arg(0), arg(1)
	case cfg.BOut:
		base.op, base.a = opOut, arg(0)
	default:
		// Unknown builtins are silent, counted no-ops in the
		// interpreter.
		base = instr{op: opNop}
	}
	c.emit(base, in.Pos)
}
