package cfg_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/langgen"
)

func compile(t testing.TB, src string) *cfg.Program {
	t.Helper()
	p, err := cfg.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestStraightLine(t *testing.T) {
	p := compile(t, `func main(input) { var x = 1; x = x + 2; return x; }`)
	f := p.Func("main")
	if len(f.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1", len(f.Blocks))
	}
	if len(f.Edges) != 0 {
		t.Errorf("edges = %d, want 0", len(f.Edges))
	}
	if f.Blocks[0].Term.Kind != cfg.TermRet {
		t.Error("terminator is not a return")
	}
}

func TestIfElseShape(t *testing.T) {
	p := compile(t, `func main(input) {
        var x = 0;
        if (len(input) > 2) { x = 1; } else { x = 2; }
        return x;
    }`)
	f := p.Func("main")
	// entry(Br), then, else, join -> 4 blocks, 4 edges, no back edges.
	if len(f.Blocks) != 4 || len(f.Edges) != 4 {
		t.Errorf("blocks=%d edges=%d, want 4/4\n%s", len(f.Blocks), len(f.Edges), f)
	}
	if f.NumBackEdges() != 0 {
		t.Errorf("back edges = %d", f.NumBackEdges())
	}
}

func TestWhileBackEdge(t *testing.T) {
	p := compile(t, `func main(input) {
        var i = 0;
        while (i < 10) { i = i + 1; }
        return i;
    }`)
	f := p.Func("main")
	if f.NumBackEdges() != 1 {
		t.Fatalf("back edges = %d, want 1\n%s", f.NumBackEdges(), f)
	}
	// The back edge must target the loop header (the block with the
	// conditional branch).
	for i, isBack := range f.BackEdge {
		if !isBack {
			continue
		}
		hdr := f.Edges[i].To
		if f.Blocks[hdr].Term.Kind != cfg.TermBr {
			t.Errorf("back edge targets b%d which is not a conditional header", hdr)
		}
	}
}

func TestForContinueBreak(t *testing.T) {
	p := compile(t, `func main(input) {
        var s = 0;
        for (var i = 0; i < 10; i = i + 1) {
            if (i == 3) { continue; }
            if (i == 7) { break; }
            s = s + i;
        }
        return s;
    }`)
	f := p.Func("main")
	if f.NumBackEdges() != 1 {
		t.Errorf("back edges = %d, want 1", f.NumBackEdges())
	}
	if _, err := f.TopoOrder(); err != nil {
		t.Errorf("topo order: %v", err)
	}
}

func TestDeadCodePruned(t *testing.T) {
	p := compile(t, `func main(input) {
        return 1;
        out(2);
        out(3);
    }`)
	f := p.Func("main")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == cfg.OpBuiltin && in.Callee == cfg.BOut {
				t.Error("dead out() call survived pruning")
			}
		}
	}
}

func TestShortCircuitLowering(t *testing.T) {
	p := compile(t, `func main(input) {
        if (len(input) > 1 && input[0] == 'x') { return 1; }
        return 0;
    }`)
	f := p.Func("main")
	// && lowers to a diamond: more than the 4 blocks of a plain if.
	if len(f.Blocks) < 6 {
		t.Errorf("short-circuit produced only %d blocks:\n%s", len(f.Blocks), f)
	}
	// Crucially, the RHS (with the potentially trapping load) must be
	// in its own block reachable only from the LHS-true edge; this is
	// verified behaviourally in the vm tests, structurally here:
	if f.NumBackEdges() != 0 {
		t.Errorf("unexpected back edges")
	}
}

func TestEdgeIndicesConsistent(t *testing.T) {
	p := compile(t, `func main(input) {
        var s = 0;
        for (var i = 0; i < len(input); i = i + 1) {
            if (input[i] > 64) { s = s + 1; } else { s = s - 1; }
        }
        return s;
    }`)
	for _, f := range p.Funcs {
		for bi := range f.Blocks {
			b := &f.Blocks[bi]
			switch b.Term.Kind {
			case cfg.TermJmp:
				e := f.Edges[b.EdgeThen]
				if e.From != bi || e.To != b.Term.Then {
					t.Errorf("b%d: jmp edge mismatch", bi)
				}
				if b.EdgeElse != -1 {
					t.Errorf("b%d: jmp has else edge", bi)
				}
			case cfg.TermBr:
				et, ee := f.Edges[b.EdgeThen], f.Edges[b.EdgeElse]
				if et.From != bi || et.To != b.Term.Then || ee.From != bi || ee.To != b.Term.Else {
					t.Errorf("b%d: br edges mismatch", bi)
				}
			case cfg.TermRet:
				if b.EdgeThen != -1 || b.EdgeElse != -1 {
					t.Errorf("b%d: ret has edges", bi)
				}
			}
		}
	}
}

func TestLoopDepths(t *testing.T) {
	p := compile(t, `func main(input) {
        var s = 0;
        for (var i = 0; i < 3; i = i + 1) {
            for (var j = 0; j < 3; j = j + 1) {
                s = s + 1;
            }
        }
        return s;
    }`)
	f := p.Func("main")
	maxDepth := 0
	for _, d := range f.LoopDepth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 2 {
		t.Errorf("max loop depth = %d, want 2", maxDepth)
	}
}

func TestTopoOrderProperties(t *testing.T) {
	p := compile(t, `func main(input) {
        var s = 0;
        while (s < len(input)) {
            if (input[s] > 9) { s = s + 2; } else { s = s + 1; }
        }
        return s;
    }`)
	f := p.Func("main")
	order, err := f.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(f.Blocks) {
		t.Fatalf("order covers %d of %d blocks", len(order), len(f.Blocks))
	}
	posOf := make([]int, len(f.Blocks))
	for i, b := range order {
		posOf[b] = i
	}
	for i, e := range f.Edges {
		if f.BackEdge[i] {
			continue
		}
		if posOf[e.From] >= posOf[e.To] {
			t.Errorf("edge b%d->b%d violates topo order", e.From, e.To)
		}
	}
	if order[0] != 0 {
		t.Errorf("entry is not first in topo order")
	}
}

func TestProgramAccessors(t *testing.T) {
	p := compile(t, `func a(x) { return x; } func main(input) { return a(1); }`)
	if p.Func("a") == nil || p.Func("nope") != nil {
		t.Error("Func lookup wrong")
	}
	if p.NumEdges() < 0 || p.NumBlocks() < 2 {
		t.Error("counts wrong")
	}
	// Call resolves to the right function index.
	f := p.Func("main")
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == cfg.OpCall {
				found = true
				if p.Funcs[in.Callee].Name != "a" {
					t.Errorf("call resolved to %s", p.Funcs[in.Callee].Name)
				}
			}
		}
	}
	if !found {
		t.Error("no call instruction lowered")
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	if _, err := cfg.Compile(`func main(input) { return x; }`); err == nil {
		t.Error("sema error not propagated")
	}
	if _, err := cfg.Compile(`not a program`); err == nil {
		t.Error("parse error not propagated")
	}
}

// TestRandomProgramsCompile is the frontend property test: every
// generated program must lower successfully with consistent CFG
// invariants.
func TestRandomProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := langgen.Generate(rng, langgen.Default())
		p, err := cfg.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		for _, f := range p.Funcs {
			if _, err := f.TopoOrder(); err != nil {
				t.Fatalf("seed %d: %s: %v", seed, f.Name, err)
			}
			// Every block index referenced by terminators is in range.
			for bi := range f.Blocks {
				tm := f.Blocks[bi].Term
				check := func(x int) {
					if x < 0 || x >= len(f.Blocks) {
						t.Fatalf("seed %d: %s: b%d target out of range", seed, f.Name, bi)
					}
				}
				switch tm.Kind {
				case cfg.TermJmp:
					check(tm.Then)
				case cfg.TermBr:
					check(tm.Then)
					check(tm.Else)
				}
			}
		}
	}
}
