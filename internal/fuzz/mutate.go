package fuzz

import (
	"encoding/binary"
	"math/rand"

	"repro/internal/analysis/interproc"
)

// interesting values injected by the havoc stage, per AFL's tables.
var (
	interesting8  = []int8{-128, -1, 0, 1, 16, 32, 64, 100, 127}
	interesting16 = []int16{-32768, -129, 128, 255, 256, 512, 1000, 1024, 4096, 32767}
	interesting32 = []int32{-2147483648, -100663046, -32769, 32768, 65535, 65536, 100663045, 2147483647}
)

// mutator implements AFL-style havoc and splice mutations.
type mutator struct {
	rng    *rand.Rand
	maxLen int
	// dict holds user and auto (cmplog-derived) tokens.
	dict [][]byte
	// rich enables the AFL++-profile extras (dictionary ops, wide
	// interesting values); the plain-AFL profile runs without them.
	rich bool
	// buf and spl are reusable candidate buffers: havoc builds its
	// output in buf and splice assembles the merged parent in spl, so
	// the steady-state fuzzing loop allocates nothing per candidate.
	// A returned candidate aliases buf and is valid only until the
	// next havoc/splice call; every retention path (queue, crash
	// records, cmplog) copies.
	buf []byte
	spl []byte
	// mask, when non-empty, restricts the positional byte mutations to
	// these input offsets (analysis-guided mode; see fuzz/guide.go).
	// maskTotal caches the offset count. Structural ops (block
	// insert/delete/copy, splice cuts) stay unrestricted — they change
	// layout, which no static byte mask describes. A nil mask draws
	// from the rng exactly as unguided code always did, keeping
	// default-off campaigns byte-identical.
	mask      []interproc.ByteRange
	maskTotal int64
}

// pos picks a mutation position in [0, n): uniformly over the masked
// offsets that fit the candidate when a mask is set (falling back to
// uniform when the drawn offset is beyond the candidate), uniform
// otherwise.
func (m *mutator) pos(n int) int {
	if m.maskTotal > 0 {
		k := m.rng.Int63n(m.maskTotal)
		for _, r := range m.mask {
			if size := r.Hi - r.Lo + 1; k < size {
				if off := r.Lo + k; off < int64(n) {
					return int(off)
				}
				break
			} else {
				k -= size
			}
		}
	}
	return m.rng.Intn(n)
}

func (m *mutator) randLen(max int) int {
	// Favor small blocks, as AFL's choose_block_len does.
	switch m.rng.Intn(10) {
	case 0:
		return 1 + m.rng.Intn(maxInt(max, 1))
	case 1, 2, 3:
		return 1 + m.rng.Intn(minInt(8, maxInt(max, 1)))
	default:
		return 1 + m.rng.Intn(minInt(32, maxInt(max, 1)))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// havoc applies a random stack of mutations to a copy of data. The
// result aliases the mutator's pooled buffer.
func (m *mutator) havoc(data []byte) []byte {
	if need := len(data) + 64; cap(m.buf) < need {
		m.buf = make([]byte, 0, need*2)
	}
	out := m.buf[:len(data)]
	copy(out, data)
	stack := 1 << (1 + m.rng.Intn(6)) // 2..64 stacked ops
	for i := 0; i < stack; i++ {
		out = m.one(out)
		if len(out) > m.maxLen {
			out = out[:m.maxLen]
		}
	}
	if len(out) == 0 {
		out = append(out, byte(m.rng.Intn(256)))
	}
	m.buf = out[:0] // recapture a buffer grown by append
	return out
}

// splice combines data with other at random cut points, then havocs the
// result.
func (m *mutator) splice(data, other []byte) []byte {
	if len(data) == 0 || len(other) == 0 {
		return m.havoc(data)
	}
	cutA := m.rng.Intn(len(data))
	cutB := m.rng.Intn(len(other))
	if need := cutA + len(other) - cutB; cap(m.spl) < need {
		m.spl = make([]byte, 0, need*2)
	}
	merged := append(m.spl[:0], data[:cutA]...)
	merged = append(merged, other[cutB:]...)
	if len(merged) > m.maxLen {
		merged = merged[:m.maxLen]
	}
	return m.havoc(merged)
}

// one applies a single random mutation.
func (m *mutator) one(out []byte) []byte {
	nOps := 12
	if m.rich {
		nOps = 15
	}
	if len(out) == 0 {
		// Only insertion makes sense on an empty input.
		return m.insertRandom(out)
	}
	switch m.rng.Intn(nOps) {
	case 0: // flip a bit
		p := m.pos(len(out))
		out[p] ^= 1 << m.rng.Intn(8)
	case 1: // set random byte
		out[m.pos(len(out))] = byte(m.rng.Intn(256))
	case 2: // add/sub byte
		p := m.pos(len(out))
		out[p] += byte(1 + m.rng.Intn(35))
	case 3:
		p := m.pos(len(out))
		out[p] -= byte(1 + m.rng.Intn(35))
	case 4: // interesting 8-bit
		out[m.pos(len(out))] = byte(interesting8[m.rng.Intn(len(interesting8))])
	case 5: // interesting 16-bit
		if len(out) >= 2 {
			p := m.pos(len(out) - 1)
			v := uint16(interesting16[m.rng.Intn(len(interesting16))])
			if m.rng.Intn(2) == 0 {
				binary.LittleEndian.PutUint16(out[p:], v)
			} else {
				binary.BigEndian.PutUint16(out[p:], v)
			}
		}
	case 6: // add/sub 16-bit
		if len(out) >= 2 {
			p := m.pos(len(out) - 1)
			v := binary.LittleEndian.Uint16(out[p:])
			if m.rng.Intn(2) == 0 {
				v += uint16(1 + m.rng.Intn(35))
			} else {
				v -= uint16(1 + m.rng.Intn(35))
			}
			binary.LittleEndian.PutUint16(out[p:], v)
		}
	case 7: // delete block
		if len(out) > 1 {
			l := m.randLen(len(out) - 1)
			p := m.rng.Intn(len(out) - l + 1)
			out = append(out[:p], out[p+l:]...)
		}
	case 8: // insert block (repeated or random bytes)
		out = m.insertBlock(out)
	case 9: // overwrite block by copy within
		if len(out) >= 2 {
			l := m.randLen(len(out) / 2)
			src := m.rng.Intn(len(out) - l + 1)
			dst := m.rng.Intn(len(out) - l + 1)
			copy(out[dst:dst+l], out[src:src+l])
		}
	case 10: // swap two bytes
		a, b := m.rng.Intn(len(out)), m.rng.Intn(len(out))
		out[a], out[b] = out[b], out[a]
	case 11: // truncate tail
		if len(out) > 1 {
			out = out[:1+m.rng.Intn(len(out)-1)]
		}
	case 12: // interesting 32-bit (rich profile)
		if len(out) >= 4 {
			p := m.pos(len(out) - 3)
			v := uint32(interesting32[m.rng.Intn(len(interesting32))])
			if m.rng.Intn(2) == 0 {
				binary.LittleEndian.PutUint32(out[p:], v)
			} else {
				binary.BigEndian.PutUint32(out[p:], v)
			}
		}
	case 13: // overwrite with dictionary token (rich profile)
		if tok := m.token(); tok != nil && len(tok) <= len(out) {
			p := m.rng.Intn(len(out) - len(tok) + 1)
			copy(out[p:], tok)
		}
	case 14: // insert dictionary token (rich profile)
		if tok := m.token(); tok != nil {
			p := m.rng.Intn(len(out) + 1)
			out = insertAt(out, p, tok)
		}
	}
	return out
}

func (m *mutator) token() []byte {
	if len(m.dict) == 0 {
		return nil
	}
	return m.dict[m.rng.Intn(len(m.dict))]
}

func (m *mutator) insertRandom(out []byte) []byte {
	n := 1 + m.rng.Intn(8)
	for i := 0; i < n; i++ {
		out = append(out, byte(m.rng.Intn(256)))
	}
	return out
}

// insertBlock mirrors AFL's clone op: usually a copy of an existing
// block from the input (which lets runs of structure — nesting
// characters, repeated records — grow), sometimes a constant or random
// block.
func (m *mutator) insertBlock(out []byte) []byte {
	l := m.randLen(32)
	p := m.rng.Intn(len(out) + 1)
	var blockArr [32]byte
	block := blockArr[:l]
	switch m.rng.Intn(4) {
	case 0, 1: // clone from the input itself
		if len(out) > 0 {
			src := m.rng.Intn(len(out))
			for i := range block {
				block[i] = out[(src+i)%len(out)]
			}
		}
	case 2: // repeated constant byte
		b := byte(m.rng.Intn(256))
		for i := range block {
			block[i] = b
		}
	default: // random bytes
		for i := range block {
			block[i] = byte(m.rng.Intn(256))
		}
	}
	return insertAt(out, p, block)
}

// insertAt inserts blk into out at p using only out's own growth; blk
// must not alias out.
func insertAt(out []byte, p int, blk []byte) []byte {
	n := len(out)
	out = append(out, blk...)
	copy(out[p+len(blk):], out[p:n])
	copy(out[p:], blk)
	return out
}
