package bytecode

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/lang"
)

// The optimizer rewrites each function before lowering, under a strict
// observational-equivalence contract with the reference interpreter:
// identical status, return value, exact step count, output, comparison
// log, crash report, and coverage map bytes for every input. That
// contract shapes every pass:
//
//   - constant folding replaces an effect-free instruction with a
//     constant load (one counted instruction for one counted
//     instruction, so step accounting is untouched); comparisons are
//     never folded because both engines record every comparison, and
//     divisions fold only when provably non-trapping;
//   - dead-store elimination replaces a dead effect-free write with a
//     nop rather than deleting it, preserving the step count;
//   - branch folding and dead-block elimination happen at lowering time
//     (see compiler.fn): the CFG edge enumeration is the contract with
//     the coverage instrumentation, so the IR shape — blocks, edges,
//     terminators — is never changed, only which code gets emitted.
//
// Each pass is gated by the IR verifier when Spec.Verify is set: a bug
// in a pass surfaces as a compile error naming the function, block, and
// violated invariant instead of as silently wrong execution.

// testBreakPass, when non-nil, is invoked after the named pass on every
// function copy, before that pass's verification — the seam the tests
// use to prove the verifier catches a broken pass.
var testBreakPass func(pass string, f *cfg.Func)

// optimizeFunc returns an optimized copy of f plus the interval
// analysis the lowering uses for branch folding and dead-block
// elimination. The original f is never mutated. With verify set, the IR
// verifier runs after every pass and a violation aborts compilation.
func optimizeFunc(f *cfg.Func, verify bool) (*cfg.Func, *analysis.Intervals, error) {
	ii := analysis.IntervalsOf(f)
	g := cloneFunc(f)
	passes := []struct {
		name string
		run  func()
	}{
		{"constfold", func() { constFold(g, ii) }},
		{"deadstore", func() { deadStores(g) }},
	}
	for _, pass := range passes {
		pass.run()
		if testBreakPass != nil {
			testBreakPass(pass.name, g)
		}
		if verify {
			if err := analysis.VerifyFunc(g); err != nil {
				return nil, nil, fmt.Errorf("bytecode optimizer: after pass %q: %w", pass.name, err)
			}
		}
	}
	return g, ii, nil
}

// cloneFunc copies f deeply enough for the passes to rewrite
// instructions in place. Edges, BackEdge, and LoopDepth are shared:
// the passes never change the CFG shape.
func cloneFunc(f *cfg.Func) *cfg.Func {
	g := *f
	g.Blocks = make([]cfg.Block, len(f.Blocks))
	for b := range f.Blocks {
		g.Blocks[b] = f.Blocks[b]
		g.Blocks[b].Instrs = append([]cfg.Instr(nil), f.Blocks[b].Instrs...)
	}
	return &g
}

// constFold replaces instructions whose result the interval analysis
// proves constant (and whose evaluation is effect-free) with constant
// loads. One counted instruction becomes one counted instruction, so
// step accounting is preserved; downstream, the lowering's const-fusion
// patterns get more opportunities.
func constFold(g *cfg.Func, ii *analysis.Intervals) {
	for b := range g.Blocks {
		for _, fc := range ii.FoldableConsts(b) {
			in := &g.Blocks[b].Instrs[fc.Instr]
			*in = cfg.Instr{Op: cfg.OpConst, Pos: in.Pos, Dst: in.Dst, Imm: fc.Val}
		}
	}
}

// dsePure reports whether in can be dropped when its destination is
// dead: no fault, no comparison observation, no heap effect. Allocation
// ops (OpStr, BAlloc) stay even when dead — heap handle numbering is
// observable through later crash reports and comparison logs.
func dsePure(in *cfg.Instr) bool {
	switch in.Op {
	case cfg.OpConst, cfg.OpMove:
		return true
	case cfg.OpUn:
		switch in.Sub {
		case lang.MINUS, lang.NOT, lang.TILDE:
			return true
		}
	case cfg.OpBin:
		switch in.Sub {
		case lang.PLUS, lang.MINUS, lang.STAR,
			lang.AMP, lang.PIPE, lang.CARET, lang.SHL, lang.SHR:
			return true
		}
	case cfg.OpBuiltin:
		switch in.Callee {
		case cfg.BAbs, cfg.BMin, cfg.BMax:
			return true
		}
	}
	return false
}

// deadStores replaces effect-free writes to dead slots with nops (a nop
// still counts one step, keeping the accounting identical; the machine
// just skips the computation and the memory write). The backward
// in-block scan cascades: once a consumer is dead, the instructions
// that only fed it die too.
func deadStores(g *cfg.Func) {
	_, liveOut := analysis.Liveness(g)
	live := analysis.NewBitSet(g.FrameSize)
	var buf []int
	for b := range g.Blocks {
		blk := &g.Blocks[b]
		live.CopyFrom(liveOut[b])
		for _, s := range analysis.TermUses(&blk.Term, buf[:0]) {
			live.Set(s)
		}
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			in := &blk.Instrs[i]
			d := analysis.InstrDef(in)
			if d >= 0 && !live.Has(d) && dsePure(in) {
				*in = cfg.Instr{Op: cfg.OpNop, Pos: in.Pos}
				continue
			}
			if d >= 0 {
				live.Unset(d)
			}
			for _, s := range analysis.InstrUses(in, buf[:0]) {
				live.Set(s)
			}
		}
	}
}
