package lang

import (
	"errors"
	"fmt"
)

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	lex  *Lexer
	tok  Token
	peek Token
	errs []error
}

// Parse parses a full MiniC compilation unit. It returns the program and
// any accumulated diagnostics; the program may be partially populated
// when errors are present.
func Parse(src string) (*Program, error) {
	p := &Parser{lex: NewLexer(src)}
	p.tok = p.lex.Next()
	p.peek = p.lex.Next()
	prog := p.parseProgram()
	errs := append(p.lex.Errors(), p.errs...)
	if len(errs) > 0 {
		return prog, errors.Join(errs...)
	}
	return prog, nil
}

// MustParse parses src and panics on error. Intended for tests and for
// embedding subject sources that are known to be valid.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) next() {
	p.tok = p.peek
	p.peek = p.lex.Next()
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	// Cap diagnostics so a confused parse does not flood the caller.
	if len(p.errs) < 25 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *Parser) expect(k Kind) Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return Token{Kind: k, Pos: t.Pos}
	}
	p.next()
	return t
}

func (p *Parser) accept(k Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// sync skips tokens until a plausible statement boundary, to recover
// from parse errors.
func (p *Parser) sync() {
	for {
		switch p.tok.Kind {
		case EOF, RBRACE, FUNC:
			return
		case SEMI:
			p.next()
			return
		}
		p.next()
	}
}

func (p *Parser) parseProgram() *Program {
	prog := &Program{}
	for p.tok.Kind != EOF {
		if p.tok.Kind != FUNC {
			p.errorf(p.tok.Pos, "expected 'func' at top level, found %s", p.tok)
			p.next()
			continue
		}
		prog.Funcs = append(prog.Funcs, p.parseFunc())
	}
	return prog
}

func (p *Parser) parseFunc() *FuncDecl {
	pos := p.expect(FUNC).Pos
	name := p.expect(IDENT).Text
	p.expect(LPAREN)
	var params []string
	if p.tok.Kind != RPAREN {
		params = append(params, p.expect(IDENT).Text)
		for p.accept(COMMA) {
			params = append(params, p.expect(IDENT).Text)
		}
	}
	p.expect(RPAREN)
	body := p.parseBlock()
	return &FuncDecl{Pos: pos, Name: name, Params: params, Body: body}
}

func (p *Parser) parseBlock() *BlockStmt {
	pos := p.expect(LBRACE).Pos
	b := &BlockStmt{Pos: pos}
	for p.tok.Kind != RBRACE && p.tok.Kind != EOF {
		before := p.tok
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.tok == before && p.tok.Kind != EOF {
			// No progress: recover.
			p.sync()
		}
	}
	p.expect(RBRACE)
	return b
}

func (p *Parser) parseStmt() Stmt {
	switch p.tok.Kind {
	case VAR:
		s := p.parseVar()
		p.expect(SEMI)
		return s
	case IF:
		return p.parseIf()
	case WHILE:
		return p.parseWhile()
	case FOR:
		return p.parseFor()
	case RETURN:
		pos := p.tok.Pos
		p.next()
		var val Expr
		if p.tok.Kind != SEMI {
			val = p.parseExpr()
		}
		p.expect(SEMI)
		return &ReturnStmt{Pos: pos, Val: val}
	case BREAK:
		pos := p.tok.Pos
		p.next()
		p.expect(SEMI)
		return &BreakStmt{Pos: pos}
	case CONTINUE:
		pos := p.tok.Pos
		p.next()
		p.expect(SEMI)
		return &ContinueStmt{Pos: pos}
	case LBRACE:
		return p.parseBlock()
	default:
		s := p.parseSimpleStmt()
		p.expect(SEMI)
		return s
	}
}

func (p *Parser) parseVar() *VarStmt {
	pos := p.expect(VAR).Pos
	name := p.expect(IDENT).Text
	var init Expr
	if p.accept(ASSIGN) {
		init = p.parseExpr()
	}
	return &VarStmt{Pos: pos, Name: name, Init: init}
}

// parseSimpleStmt parses an assignment, array store, or expression
// statement (without the trailing semicolon).
func (p *Parser) parseSimpleStmt() Stmt {
	if p.tok.Kind == IDENT {
		switch p.peek.Kind {
		case ASSIGN:
			pos := p.tok.Pos
			name := p.tok.Text
			p.next()
			p.next()
			return &AssignStmt{Pos: pos, Name: name, Val: p.parseExpr()}
		case LBRACK:
			// Could be a store `a[i] = v` or an index expression used as
			// a statement. Parse the index, then decide.
			pos := p.tok.Pos
			name := p.tok.Text
			p.next()
			p.next()
			idx := p.parseExpr()
			p.expect(RBRACK)
			if p.accept(ASSIGN) {
				return &StoreStmt{Pos: pos, Name: name, Idx: idx, Val: p.parseExpr()}
			}
			// A bare a[i]; has no effect, but we allow it as an
			// expression statement (the load can still trap).
			x := Expr(&IndexExpr{Pos: pos, X: &Ident{Pos: pos, Name: name}, Idx: idx})
			x = p.parsePostfix(x)
			return &ExprStmt{Pos: pos, X: x}
		}
	}
	pos := p.tok.Pos
	return &ExprStmt{Pos: pos, X: p.parseExpr()}
}

func (p *Parser) parseIf() *IfStmt {
	pos := p.expect(IF).Pos
	p.expect(LPAREN)
	cond := p.parseExpr()
	p.expect(RPAREN)
	then := p.parseBlock()
	var els Stmt
	if p.accept(ELSE) {
		if p.tok.Kind == IF {
			els = p.parseIf()
		} else {
			els = p.parseBlock()
		}
	}
	return &IfStmt{Pos: pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseWhile() *WhileStmt {
	pos := p.expect(WHILE).Pos
	p.expect(LPAREN)
	cond := p.parseExpr()
	p.expect(RPAREN)
	body := p.parseBlock()
	return &WhileStmt{Pos: pos, Cond: cond, Body: body}
}

func (p *Parser) parseFor() *ForStmt {
	pos := p.expect(FOR).Pos
	p.expect(LPAREN)
	var init Stmt
	if p.tok.Kind != SEMI {
		if p.tok.Kind == VAR {
			init = p.parseVar()
		} else {
			init = p.parseSimpleStmt()
		}
	}
	p.expect(SEMI)
	var cond Expr
	if p.tok.Kind != SEMI {
		cond = p.parseExpr()
	}
	p.expect(SEMI)
	var post Stmt
	if p.tok.Kind != RPAREN {
		post = p.parseSimpleStmt()
	}
	p.expect(RPAREN)
	body := p.parseBlock()
	return &ForStmt{Pos: pos, Init: init, Cond: cond, Post: post, Body: body}
}

// Operator precedence, loosest first. LAND/LOR are handled separately so
// short-circuiting stays visible to the CFG builder.
func precedence(k Kind) int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQ, NE, LT, LE, GT, GE:
		return 3
	case PLUS, MINUS, PIPE, CARET:
		return 4
	case STAR, SLASH, PCT, AMP, SHL, SHR:
		return 5
	}
	return 0
}

func (p *Parser) parseExpr() Expr { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) Expr {
	x := p.parseUnary()
	for {
		prec := precedence(p.tok.Kind)
		if prec < minPrec {
			return x
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		y := p.parseBinary(prec + 1)
		x = &BinaryExpr{Pos: pos, Op: op, X: x, Y: y}
	}
}

func (p *Parser) parseUnary() Expr {
	switch p.tok.Kind {
	case MINUS, NOT, TILDE:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		return &UnaryExpr{Pos: pos, Op: op, X: p.parseUnary()}
	}
	return p.parsePostfix(p.parsePrimary())
}

func (p *Parser) parsePostfix(x Expr) Expr {
	for p.tok.Kind == LBRACK {
		pos := p.tok.Pos
		p.next()
		idx := p.parseExpr()
		p.expect(RBRACK)
		x = &IndexExpr{Pos: pos, X: x, Idx: idx}
	}
	return x
}

func (p *Parser) parsePrimary() Expr {
	switch p.tok.Kind {
	case INT:
		e := &IntLit{Pos: p.tok.Pos, Val: p.tok.Val}
		p.next()
		return e
	case STR:
		e := &StrLit{Pos: p.tok.Pos, Val: p.tok.Text}
		p.next()
		return e
	case IDENT:
		pos := p.tok.Pos
		name := p.tok.Text
		p.next()
		if p.tok.Kind == LPAREN {
			p.next()
			var args []Expr
			if p.tok.Kind != RPAREN {
				args = append(args, p.parseExpr())
				for p.accept(COMMA) {
					args = append(args, p.parseExpr())
				}
			}
			p.expect(RPAREN)
			return &CallExpr{Pos: pos, Name: name, Args: args}
		}
		return &Ident{Pos: pos, Name: name}
	case LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(RPAREN)
		return e
	default:
		p.errorf(p.tok.Pos, "expected expression, found %s", p.tok)
		pos := p.tok.Pos
		p.next()
		return &IntLit{Pos: pos, Val: 0}
	}
}
