package balllarus

import (
	"errors"
	"testing"

	"repro/internal/subjects"
)

// TestSubjectsPathRoundTrip is the decode round-trip bar on the real
// benchmark programs: for every function of every subject, every
// enumerated ENTRY→EXIT path must produce the same ID under the naive
// value sum (NaivePlan's increments) and the optimized chord sum
// (OptimizedPlan's increments), and Regenerate must invert that ID back
// to the exact block sequence. Out-of-range IDs must fail with the
// typed ErrPathOutOfRange so map-inversion tooling can tell a stale
// cell from corruption.
func TestSubjectsPathRoundTrip(t *testing.T) {
	// Cap per-function enumeration: some subjects have path counts far
	// past what a test should walk; the prefix still exercises every
	// decode mechanism (the dense ID space has no special tail).
	const limit = 1 << 13
	for _, name := range subjects.Names() {
		sub := subjects.Get(name)
		prog, err := sub.Program()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, f := range prog.Funcs {
			enc, err := Encode(f)
			if err != nil {
				// Hash-fallback functions have no exact path table to
				// round-trip; the covmap tests cover their honesty.
				continue
			}
			paths := enumeratePaths(enc, limit)
			for _, p := range paths {
				naive := pathID(enc, p, func(d *DAGEdge) int64 { return d.Val })
				opt := pathID(enc, p, func(d *DAGEdge) int64 {
					if d.InTree {
						return 0
					}
					return d.Inc
				})
				if naive != opt {
					t.Fatalf("%s.%s: path %v: naive id %d != optimized id %d", name, f.Name, p, naive, opt)
				}
				steps, err := enc.Regenerate(uint64(naive))
				if err != nil {
					t.Fatalf("%s.%s: Regenerate(%d): %v", name, f.Name, naive, err)
				}
				got := make([]int, len(steps))
				for i, s := range steps {
					got[i] = s.Block
				}
				if want := blocksOfPath(enc, p); !equalInts(got, want) {
					t.Fatalf("%s.%s: id %d regenerated %v, want %v", name, f.Name, naive, got, want)
				}
			}
			if _, err := enc.Regenerate(enc.NumPaths); !errors.Is(err, ErrPathOutOfRange) {
				t.Fatalf("%s.%s: Regenerate(NumPaths) = %v, want ErrPathOutOfRange", name, f.Name, err)
			}
		}
	}
}
