package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/balllarus"
	"repro/internal/cfg"
	"repro/internal/langgen"
	"repro/internal/subjects"
)

// TestVerifySubjects checks every embedded benchmark subject satisfies
// all IR invariants, including the Ball-Larus numbering.
func TestVerifySubjects(t *testing.T) {
	for _, name := range subjects.Names() {
		sub := subjects.Get(name)
		if err := Verify(sub.MustProgram()); err != nil {
			t.Errorf("subject %s: %v", name, err)
		}
	}
}

// TestVerifyLanggenCorpus runs the verifier (and the dataflow analyses,
// for crash-freedom) over a corpus of generated programs whose CFGs
// exercise nested loops, early returns, and deep branching.
func TestVerifyLanggenCorpus(t *testing.T) {
	cfgGen := langgen.Default()
	for seed := int64(0); seed < 60; seed++ {
		src := langgen.Generate(rand.New(rand.NewSource(seed)), cfgGen)
		prog, err := cfg.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		if err := Verify(prog); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		for _, f := range prog.Funcs {
			Dominators(f)
			PostDominators(f)
			Liveness(f)
			ReachingDefs(f)
			IntervalsOf(f)
		}
		NewReach(prog)
	}
}

// selfLoopFunc hand-builds a CFG with a self-loop (b1 branches to
// itself) — a shape the MiniC lowering never emits but the analyses
// must still handle.
func selfLoopFunc() *cfg.Func {
	return &cfg.Func{
		ID: 0, Name: "selfloop", NParams: 1, NumSlots: 1, FrameSize: 1,
		Blocks: []cfg.Block{
			{Term: cfg.Term{Kind: cfg.TermJmp, Then: 1}, EdgeThen: 0, EdgeElse: -1},
			{Term: cfg.Term{Kind: cfg.TermBr, Cond: 0, Then: 1, Else: 2}, EdgeThen: 1, EdgeElse: 2},
			{Term: cfg.Term{Kind: cfg.TermRet, Val: -1}, EdgeThen: -1, EdgeElse: -1},
		},
		Edges:     []cfg.Edge{{From: 0, To: 1}, {From: 1, To: 1}, {From: 1, To: 2}},
		BackEdge:  []bool{false, true, false},
		LoopDepth: []int{0, 1, 0},
	}
}

func TestVerifyAdversarialShapes(t *testing.T) {
	t.Run("self-loop", func(t *testing.T) {
		f := selfLoopFunc()
		if err := VerifyFunc(f); err != nil {
			t.Fatalf("hand-built self-loop rejected: %v", err)
		}
		idom := Dominators(f)
		if idom[1] != 0 || !Dominates(idom, 1, 1) {
			t.Fatalf("self-loop dominators wrong: %v", idom)
		}
		Liveness(f)
		IntervalsOf(f)
	})

	t.Run("empty-body-function", func(t *testing.T) {
		prog, err := cfg.Compile(`func nop(a) { } func main(input) { nop(0); return 0; }`)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(prog); err != nil {
			t.Fatal(err)
		}
		f := prog.Func("nop")
		if f == nil {
			t.Fatal("nop not compiled")
		}
		Liveness(f)
		if ii := IntervalsOf(f); !ii.Reached[0] {
			t.Fatal("entry of empty function not reached")
		}
	})

	t.Run("multiple-back-edges-one-header", func(t *testing.T) {
		prog, err := cfg.Compile(`func main(input) {
			var i = 0;
			while (i < len(input)) {
				i = i + 1;
				if (i > 3) { continue; }
				i = i + 2;
			}
			return i;
		}`)
		if err != nil {
			t.Fatal(err)
		}
		f := prog.Func("main")
		if n := f.NumBackEdges(); n < 2 {
			t.Fatalf("want >=2 back edges from while+continue, got %d", n)
		}
		if err := Verify(prog); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("nested-loops", func(t *testing.T) {
		prog, err := cfg.Compile(`func main(input) {
			var s = 0;
			for (var i = 0; i < len(input); i = i + 1) {
				for (var j = 0; j < i; j = j + 1) {
					if (input[j] > input[i]) { s = s + 1; } else { s = s - 1; }
				}
			}
			return s;
		}`)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(prog); err != nil {
			t.Fatal(err)
		}
		f := prog.Func("main")
		max := 0
		for _, d := range f.LoopDepth {
			if d > max {
				max = d
			}
		}
		if max < 2 {
			t.Fatalf("nested loops should reach depth >= 2, got %d", max)
		}
	})
}

// corrupt compiles src, applies mutate to main, and asserts VerifyFunc
// rejects it with a diagnostic naming the function, the block, and the
// violated invariant.
func corrupt(t *testing.T, src string, wantSubstr string, mutate func(f *cfg.Func)) {
	t.Helper()
	prog, err := cfg.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	if err := VerifyFunc(f); err != nil {
		t.Fatalf("pre-corruption verify failed: %v", err)
	}
	mutate(f)
	err = VerifyFunc(f)
	if err == nil {
		t.Fatalf("corruption not detected (want %q)", wantSubstr)
	}
	msg := err.Error()
	for _, part := range []string{`func "main"`, "block b", wantSubstr} {
		if !strings.Contains(msg, part) {
			t.Fatalf("diagnostic %q does not contain %q", msg, part)
		}
	}
}

const loopSrc = `func main(input) {
	var s = 0;
	for (var i = 0; i < len(input); i = i + 1) {
		if (input[i] > 61) { s = s + input[i]; }
	}
	return s;
}`

func TestVerifyCatchesCorruption(t *testing.T) {
	t.Run("jump-target-out-of-range", func(t *testing.T) {
		corrupt(t, loopSrc, "out of range", func(f *cfg.Func) {
			for b := range f.Blocks {
				if f.Blocks[b].Term.Kind == cfg.TermJmp {
					f.Blocks[b].Term.Then = len(f.Blocks) + 7
					return
				}
			}
			t.Fatal("no jmp block")
		})
	})
	t.Run("branch-identical-targets", func(t *testing.T) {
		corrupt(t, loopSrc, "identical targets", func(f *cfg.Func) {
			for b := range f.Blocks {
				if f.Blocks[b].Term.Kind == cfg.TermBr {
					f.Blocks[b].Term.Else = f.Blocks[b].Term.Then
					return
				}
			}
			t.Fatal("no br block")
		})
	})
	t.Run("unknown-terminator", func(t *testing.T) {
		corrupt(t, loopSrc, "unknown terminator kind", func(f *cfg.Func) {
			f.Blocks[0].Term.Kind = cfg.TermKind(99)
		})
	})
	t.Run("non-canonical-edge", func(t *testing.T) {
		corrupt(t, loopSrc, "want canonical", func(f *cfg.Func) {
			f.Edges[0].To = (f.Edges[0].To + 1) % len(f.Blocks)
		})
	})
	t.Run("edge-index-mismatch", func(t *testing.T) {
		corrupt(t, loopSrc, "index is", func(f *cfg.Func) {
			for b := range f.Blocks {
				if f.Blocks[b].Term.Kind == cfg.TermBr {
					f.Blocks[b].EdgeThen = f.Blocks[b].EdgeElse
					return
				}
			}
		})
	})
	t.Run("back-edge-flag-flipped", func(t *testing.T) {
		corrupt(t, loopSrc, "back-edge flag", func(f *cfg.Func) {
			for e := range f.BackEdge {
				if f.BackEdge[e] {
					f.BackEdge[e] = false
					return
				}
			}
			t.Fatal("no back edge")
		})
	})
	t.Run("loop-depth-wrong", func(t *testing.T) {
		corrupt(t, loopSrc, "loop depth", func(f *cfg.Func) {
			f.LoopDepth[0]++
		})
	})
	t.Run("unreachable-block", func(t *testing.T) {
		corrupt(t, loopSrc, "unreachable from entry", func(f *cfg.Func) {
			n := len(f.Blocks)
			f.Blocks = append(f.Blocks, cfg.Block{
				Term:     cfg.Term{Kind: cfg.TermJmp, Then: 0},
				EdgeThen: len(f.Edges), EdgeElse: -1,
			})
			f.Edges = append(f.Edges, cfg.Edge{From: n, To: 0})
			f.BackEdge = append(f.BackEdge, false)
			f.LoopDepth = append(f.LoopDepth, 0)
		})
	})
	t.Run("use-before-assignment", func(t *testing.T) {
		corrupt(t, loopSrc, "not definitely assigned", func(f *cfg.Func) {
			// Prepend a read of the last frame slot (an expression temp,
			// never live into the entry block).
			tmp := f.FrameSize - 1
			f.Blocks[0].Instrs = append([]cfg.Instr{
				{Op: cfg.OpMove, Dst: tmp, A: tmp},
			}, f.Blocks[0].Instrs...)
		})
	})
}

// TestPathNumberingChecksCatchTampering corrupts a Ball-Larus encoding
// and plan directly and checks the path-level verification machinery
// (the pieces a broken instrumentation pass would trip) rejects them.
func TestPathNumberingChecksCatchTampering(t *testing.T) {
	prog, err := cfg.Compile(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	v := &verifier{f: f}

	t.Run("val-prefix-sum-broken", func(t *testing.T) {
		enc, err := balllarus.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		// Bump the Val of a non-zero-Val DAG edge: the prefix-sum
		// property no longer holds.
		broke := false
		for i := range enc.Dag {
			if enc.Dag[i].Val > 0 {
				enc.Dag[i].Val++
				broke = true
				break
			}
		}
		if !broke {
			t.Fatal("no DAG edge with nonzero Val (need a branch)")
		}
		if err := v.checkPathCounts(enc); err == nil {
			t.Fatal("tampered Val not detected")
		} else if !strings.Contains(err.Error(), "Ball-Larus numbering violated") {
			t.Fatalf("wrong diagnostic: %v", err)
		}
	})

	t.Run("plan-increment-broken", func(t *testing.T) {
		enc, err := balllarus.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		naive := enc.NaivePlan()
		opt := enc.OptimizedPlan()
		// Corrupt one forward-edge increment in the optimized plan.
		broke := false
		for e := range f.Edges {
			if !f.BackEdge[e] {
				opt.EdgeInc[e] += 3
				broke = true
				break
			}
		}
		if !broke {
			t.Fatal("no forward edge")
		}
		err = v.enumeratePaths(enc, &naive, &opt)
		if err == nil {
			// The corrupted edge might be off every ENTRY→EXIT path only
			// if the CFG were disconnected, which it is not.
			t.Fatal("tampered plan increment not detected")
		}
		if !strings.Contains(err.Error(), "plan records path ID") &&
			!strings.Contains(err.Error(), "outside [0,") {
			t.Fatalf("wrong diagnostic: %v", err)
		}
	})
}
