package subjects

import "repro/internal/vm"

// nmnew models a symbol-table dumper (binutils nm). The paper reports
// that no fuzzer found any bug in nm-new across every configuration;
// we reproduce that by guarding this subject's single planted bug
// behind a 16-bit checksum equality over the whole symbol table —
// satisfiable (the witness proves it) but beyond any coverage-guided
// search within realistic budgets, since the checksum comparison gives
// no partial feedback.
const nmnewSrc = `
// nmnew: symbol table dumper.
// Layout: 7F 'E' 'L' 'F' nsyms(1) checksum(2 LE) entries: len(1) name[len] val(1).

func checksum(input, pos, end) {
    var sum = 0;
    while (pos < end && pos < len(input)) {
        sum = (sum + input[pos] * 31) & 0xFFFF;
        pos = pos + 1;
    }
    return sum;
}

func dump_symbols(input, pos, nsyms) {
    var printed = 0;
    var i = 0;
    while (i < nsyms && pos < len(input)) {
        var nl = input[pos];
        pos = pos + 1;
        var j = 0;
        while (j < nl && pos < len(input)) {
            out(input[pos]);
            pos = pos + 1;
            j = j + 1;
        }
        if (pos < len(input)) {
            out(input[pos]);
            pos = pos + 1;
        }
        printed = printed + 1;
        i = i + 1;
    }
    return printed;
}

func main(input) {
    if (len(input) < 7) { return 1; }
    if (input[0] != 0x7F || input[1] != 'E' || input[2] != 'L' || input[3] != 'F') {
        return 1;
    }
    var nsyms = input[4];
    var want = input[5] | (input[6] << 8);
    var got = checksum(input, 7, len(input));
    if (got == want && nsyms == 0x77 && len(input) > 32) {
        // BUG nm-1: debug dump of an internal table, reachable only
        // when the stored checksum matches the computed one exactly.
        var dbg = alloc(4);
        dbg[nsyms] = got; // OOB write, in practice unreachable by fuzzing
        return dbg[nsyms];
    }
    return dump_symbols(input, 7, nsyms);
}
`

func init() {
	// Build the witness: header + 0x77 symbols byte + filler such that
	// checksum(body) == stored checksum.
	body := make([]byte, 30)
	for i := range body {
		body[i] = byte('a' + i%20)
	}
	sum := 0
	for _, b := range body {
		sum = (sum + int(b)*31) & 0xFFFF
	}
	witness := append([]byte{0x7F, 'E', 'L', 'F', 0x77, byte(sum & 255), byte(sum >> 8)}, body...)

	register(&Subject{
		Name:      "nm-new",
		TypeLabel: "C",
		Source:    nmnewSrc,
		Seeds: [][]byte{
			{0x7F, 'E', 'L', 'F', 2, 0, 0, 3, 'f', 'o', 'o', 9, 2, 'h', 'i', 4},
		},
		Bugs: []Bug{
			{
				ID:          "nm-1-checksum-gated",
				Witness:     witness,
				WantKind:    vm.KindOOBWrite,
				WantFunc:    "main",
				Unreachable: true,
				Comment: "guarded by a full-input 16-bit checksum equality with no partial " +
					"feedback; reproduces the paper's empty nm-new row",
			},
		},
	})
}
