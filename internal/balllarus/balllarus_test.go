package balllarus

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/langgen"
)

// fig1Src is the paper's Figure 1 motivating example, transliterated to
// MiniC. N = 54; the bug triggers via the "rare" block when the input
// is long enough and starts with 'h'.
const fig1Src = `
func foo(input, arr) {
    var j = 0;
    var len = strlen(input);
    if (len - 2 > 54 || len < 3) { return 0; }
    if (len % 4 == 0 && len > 39) {
        j = 3; // rare to reach
    } else {
        j = -2;
    }
    var c = input[0];
    if (c == 'h') {
        arr[len + j] = 7; // buffer overflow if reached via rare block
    } else {
        j = abs(j);
        arr[j] = 0;
    }
    return 0;
}

func strlen(s) { return len(s); }

func main(input) {
    var arr = alloc(54);
    return foo(input, arr);
}
`

func compile(t *testing.T, src string) *cfg.Program {
	t.Helper()
	p, err := cfg.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestEncodeSimpleFunction(t *testing.T) {
	p := compile(t, `func main(input) { return 0; }`)
	enc, err := Encode(p.Func("main"))
	if err != nil {
		t.Fatal(err)
	}
	if enc.NumPaths != 1 {
		t.Errorf("straight-line function: NumPaths = %d, want 1", enc.NumPaths)
	}
}

func TestEncodeDiamond(t *testing.T) {
	p := compile(t, `
func main(input) {
    var x = 0;
    if (len(input) > 2) { x = 1; } else { x = 2; }
    if (x == 1) { x = 3; } else { x = 4; }
    return x;
}`)
	enc, err := Encode(p.Func("main"))
	if err != nil {
		t.Fatal(err)
	}
	if enc.NumPaths != 4 {
		t.Errorf("two diamonds: NumPaths = %d, want 4", enc.NumPaths)
	}
}

func TestEncodeLoop(t *testing.T) {
	p := compile(t, `
func main(input) {
    var i = 0;
    while (i < len(input)) {
        i = i + 1;
    }
    return i;
}`)
	f := p.Func("main")
	if f.NumBackEdges() != 1 {
		t.Fatalf("NumBackEdges = %d, want 1", f.NumBackEdges())
	}
	enc, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	// Acyclic paths of a single while loop:
	//   entry -> header -> exit                (loop never entered)
	//   entry -> header -> body -> [back edge] (first iteration)
	//   header -> body -> [back edge]          (middle iteration)
	//   header -> exit                         (last iteration)
	if enc.NumPaths != 4 {
		t.Errorf("while loop: NumPaths = %d, want 4", enc.NumPaths)
	}
}

// enumeratePaths walks every ENTRY->EXIT path of the DAG, returning the
// edge-index sequences.
func enumeratePaths(e *Encoding, limit int) [][]int {
	var out [][]int
	var walk func(node int, path []int)
	walk = func(node int, path []int) {
		if len(out) >= limit {
			return
		}
		if node == e.exit {
			cp := make([]int, len(path))
			copy(cp, path)
			out = append(out, cp)
			return
		}
		for _, de := range e.out[node] {
			walk(e.Dag[de].To, append(path, de))
		}
	}
	walk(0, nil)
	return out
}

// pathID sums a value function over a path's edges.
func pathID(e *Encoding, path []int, val func(*DAGEdge) int64) int64 {
	var sum int64
	for _, de := range path {
		sum += val(&e.Dag[de])
	}
	return sum
}

func checkEncoding(t *testing.T, f *cfg.Func) {
	t.Helper()
	enc, err := Encode(f)
	if err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	const limit = 100000
	paths := enumeratePaths(enc, limit)
	if uint64(len(paths)) != enc.NumPaths && len(paths) < limit {
		t.Errorf("%s: enumerated %d paths, NumPaths = %d", f.Name, len(paths), enc.NumPaths)
	}
	seen := make(map[int64]bool)
	for _, p := range paths {
		naive := pathID(enc, p, func(d *DAGEdge) int64 { return d.Val })
		opt := pathID(enc, p, func(d *DAGEdge) int64 {
			if d.InTree {
				return 0
			}
			return d.Inc
		})
		if naive != opt {
			t.Fatalf("%s: path %v: naive id %d != optimized id %d", f.Name, p, naive, opt)
		}
		if naive < 0 || uint64(naive) >= enc.NumPaths {
			t.Fatalf("%s: path id %d out of range [0,%d)", f.Name, naive, enc.NumPaths)
		}
		if seen[naive] {
			t.Fatalf("%s: duplicate path id %d", f.Name, naive)
		}
		seen[naive] = true
	}
}

func TestFig1Encoding(t *testing.T) {
	p := compile(t, fig1Src)
	for _, f := range p.Funcs {
		checkEncoding(t, f)
	}
	// The paper's CFG for foo (Fig. 1 right) has 5 acyclic paths. Our
	// lowering adds short-circuit diamonds for || and &&, so the MiniC
	// foo has more, but the count must still be finite, exact, and
	// every ID must round-trip; checkEncoding verified that. Document
	// the actual value to catch lowering regressions.
	enc, err := Encode(p.Func("foo"))
	if err != nil {
		t.Fatal(err)
	}
	if enc.NumPaths < 5 {
		t.Errorf("foo: NumPaths = %d, want >= 5", enc.NumPaths)
	}
	t.Logf("foo: %d acyclic paths", enc.NumPaths)
}

func TestOptimizedPlanProbePlacement(t *testing.T) {
	// The Ball-Larus guarantee is not "fewer probes than naive" (naive
	// gets zero-valued edges for free) but: (a) increments live only on
	// chords, so the probe count is bounded by |E|+1-|V|, and (b) the
	// maximum-weight spanning tree keeps increments off the
	// highest-frequency (deepest-loop) edges.
	p := compile(t, fig1Src+`
func hot(input) {
    var s = 0;
    for (var i = 0; i < len(input); i = i + 1) {
        if (input[i] > 64) { s = s + 2; } else { s = s + 1; }
    }
    return s;
}`)
	for _, f := range p.Funcs {
		enc, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		chords := 0
		for i := range enc.Dag {
			if !enc.Dag[i].InTree {
				chords++
			}
		}
		opt := enc.OptimizedPlan()
		if opt.Probes > chords {
			t.Errorf("%s: optimized plan has %d probes, only %d chords", f.Name, opt.Probes, chords)
		}
		naive := enc.NaivePlan()
		t.Logf("%s: probes naive=%d optimized=%d chords=%d edges=%d",
			f.Name, naive.Probes, opt.Probes, chords, len(f.Edges))
	}
	// For the loop function, the weighted (frequency-estimated) probe
	// cost of the optimized plan must not exceed the naive plan's: the
	// spanning tree exists precisely to keep probes off hot edges.
	f := p.Func("hot")
	enc, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	cost := func(instrumented func(*DAGEdge) bool) int64 {
		var c int64
		for i := range enc.Dag {
			if instrumented(&enc.Dag[i]) {
				c += enc.Dag[i].Weight
			}
		}
		return c
	}
	naiveCost := cost(func(d *DAGEdge) bool { return d.Val != 0 })
	optCost := cost(func(d *DAGEdge) bool { return !d.InTree && d.Inc != 0 })
	if optCost > naiveCost {
		t.Errorf("hot: optimized weighted cost %d exceeds naive %d", optCost, naiveCost)
	}
	t.Logf("hot: weighted probe cost naive=%d optimized=%d", naiveCost, optCost)
}

func TestRegenerateRoundTrip(t *testing.T) {
	p := compile(t, fig1Src)
	for _, f := range p.Funcs {
		enc, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		paths := enumeratePaths(enc, 100000)
		for _, path := range paths {
			id := pathID(enc, path, func(d *DAGEdge) int64 { return d.Val })
			steps, err := enc.Regenerate(uint64(id))
			if err != nil {
				t.Fatalf("%s: regenerate(%d): %v", f.Name, id, err)
			}
			if len(steps) == 0 {
				t.Fatalf("%s: regenerate(%d): empty path", f.Name, id)
			}
			// The regenerated block sequence must match the enumerated
			// edge sequence's block walk.
			want := blocksOfPath(enc, path)
			got := make([]int, len(steps))
			for i, s := range steps {
				got[i] = s.Block
			}
			if !equalInts(got, want) {
				t.Fatalf("%s: regenerate(%d) = %v, want %v", f.Name, id, got, want)
			}
		}
	}
	// Out-of-range IDs must error.
	enc, _ := Encode(p.Func("foo"))
	if _, err := enc.Regenerate(enc.NumPaths); err == nil {
		t.Error("Regenerate(NumPaths) succeeded, want error")
	}
}

// blocksOfPath converts a DAG edge sequence into the block sequence a
// Regenerate call should produce.
func blocksOfPath(e *Encoding, path []int) []int {
	var blocks []int
	push := func(b int) {
		if n := len(blocks); n == 0 || blocks[n-1] != b {
			blocks = append(blocks, b)
		}
	}
	for i, de := range path {
		d := &e.Dag[de]
		switch d.Kind {
		case BackStart:
			blocks = blocks[:0]
			blocks = append(blocks, d.To)
		case BackEnd, RetEdge:
			push(d.From)
		case Real:
			if i == 0 {
				push(d.From)
			}
			push(d.To)
		}
	}
	return blocks
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBackEdgeActionsConsistent(t *testing.T) {
	// For a function with loops, every back edge must have a BackAction
	// in both plans, and the two plans must agree on path identity (the
	// runtime equivalence is separately verified end-to-end in package
	// instrument's tests).
	p := compile(t, `
func main(input) {
    var s = 0;
    var i = 0;
    while (i < len(input)) {
        if (input[i] > 64) { s = s + 2; } else { s = s + 1; }
        i = i + 1;
    }
    for (var j = 0; j < 3; j = j + 1) {
        s = s * 2;
    }
    return s;
}`)
	f := p.Func("main")
	enc, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	checkEncoding(t, f)
	for _, plan := range []Plan{enc.NaivePlan(), enc.OptimizedPlan()} {
		nBack := 0
		for i, isBack := range f.BackEdge {
			if !isBack {
				continue
			}
			nBack++
			if _, ok := plan.Back[i]; !ok {
				t.Fatalf("back edge %d has no BackAction", i)
			}
		}
		if nBack != 2 {
			t.Errorf("found %d back edges, want 2", nBack)
		}
		if len(plan.Back) != nBack {
			t.Errorf("plan has %d back actions, want %d", len(plan.Back), nBack)
		}
	}
}

// TestRandomProgramsEncoding is the numbering property test over
// randomly generated programs: for every function, enumerated paths get
// unique in-range IDs, naive and chord placements agree, and every ID
// regenerates to the enumerated block walk.
func TestRandomProgramsEncoding(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := langgen.Generate(rng, langgen.Default())
		p, err := cfg.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range p.Funcs {
			checkEncoding(t, f)
		}
	}
}

// TestRegenerateAllIDs round-trips every path ID of every function in a
// moderately branchy program (exhaustive inversion check).
func TestRegenerateAllIDs(t *testing.T) {
	p := compile(t, `
func main(input) {
    var s = 0;
    var i = 0;
    while (i < len(input)) {
        var c = input[i];
        if (c > 128) { s = s + 2; } else { s = s + 1; }
        if ((c & 1) == 1) { s = s * 2; }
        i = i + 1;
    }
    if (s > 100) { return s - 100; }
    return s;
}`)
	f := p.Func("main")
	enc, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if enc.NumPaths == 0 || enc.NumPaths > 10000 {
		t.Fatalf("unexpected path count %d", enc.NumPaths)
	}
	seen := make(map[string]bool)
	for id := uint64(0); id < enc.NumPaths; id++ {
		steps, err := enc.Regenerate(id)
		if err != nil {
			t.Fatalf("id %d: %v", id, err)
		}
		key := ""
		for _, s := range steps {
			key += string(rune('A' + s.Block))
			if s.EnterViaBackEdge {
				key += "^"
			}
			if s.ExitViaBackEdge {
				key += "$"
			}
		}
		if seen[key] {
			t.Fatalf("ids regenerate to the same path: %q", key)
		}
		seen[key] = true
	}
}

// TestMaxPathsGuard: a function with enough sequential diamonds to
// overflow the numbering must be rejected (the tracers then fall back
// to hashing, tested in package instrument).
func TestMaxPathsGuard(t *testing.T) {
	src := "func main(input) {\n    var s = 0;\n"
	for i := 0; i < 52; i++ {
		src += "    if (len(input) > " + itoa(i) + ") { s = s + 1; } else { s = s - 1; }\n"
	}
	src += "    return s;\n}\n"
	p := compile(t, src)
	_, err := Encode(p.Func("main"))
	if err == nil {
		t.Fatal("52 sequential diamonds (2^52 paths) should exceed MaxPaths")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
