// The quickstart example walks through the paper's Figure 1: it
// compiles the motivating `foo` program, prints its Ball-Larus path
// numbering, and shows that the path-aware feedback retains the
// "rare-block" test case and converts it into the heap overflow, while
// edge coverage-guided fuzzing has a much harder time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/strategy"
)

// fig1 transliterates the paper's Figure 1 to MiniC. The overflow at
// arr[l+j] triggers only when execution reached the rare j=3 block
// (l%4==0 && l>39) AND the input starts with 'h' — two conditions set
// on different paths through foo.
const fig1 = `
func foo(input, arr) {
    var j = 0;
    var l = len(input);
    if (l - 2 > 54 || l < 3) { return 0; }
    if (l % 4 == 0 && l > 39) {
        j = 3; // rare to reach
    } else {
        j = -2;
    }
    var c = input[0];
    if (c == 'h') {
        arr[l + j] = 7; // buffer overflow if reached via the rare block
    } else {
        j = abs(j);
        arr[j] = 0;
    }
    return 0;
}

func main(input) {
    var arr = alloc(54);
    return foo(input, arr);
}
`

func main() {
	target, err := core.Compile(fig1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Ball-Larus numbering (Figure 1 machinery) ===")
	for _, ps := range target.PathReport() {
		fmt.Printf("%-8s blocks=%-3d edges=%-3d acyclic paths=%-4d probes naive=%d optimized=%d\n",
			ps.Func, ps.Blocks, ps.Edges, ps.NumPaths, ps.ProbesNaive, ps.ProbesOptimal)
	}

	seeds := [][]byte{[]byte("hello"), []byte("abcd")}
	const budget = 120000

	fmt.Println("\n=== Fuzzing foo: path-aware vs edge coverage (pcguard) ===")
	for _, name := range []strategy.Name{strategy.Path, strategy.PCGuard} {
		found := 0
		firstAt := int64(-1)
		const trials = 3
		for seed := int64(1); seed <= trials; seed++ {
			out, err := target.Fuzz(core.Campaign{
				Fuzzer: name,
				Budget: budget,
				Seeds:  seeds,
				Seed:   seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			for key, rec := range out.Report.Bugs {
				fmt.Printf("  %-8s seed %d: found %s at exec %d\n", name, seed, key, rec.FoundAt)
				found++
				if firstAt < 0 || rec.FoundAt < firstAt {
					firstAt = rec.FoundAt
				}
			}
		}
		fmt.Printf("%-8s: triggered the overflow in %d/%d trials\n\n", name, found, trials)
	}
	fmt.Println("The path-aware fuzzer retains the test case that reaches line 19 via")
	fmt.Println("the rare block even though every edge was already covered; byte")
	fmt.Println("mutations then only need to produce a leading 'h' (condition (i)).")
}
