// Command palint lints MiniC programs with the static-analysis
// framework: AST-level unreachable statements and unused variables,
// interval-analysis findings over the lowered CFG (branches that
// are always taken one way, interval-unreachable code, and guaranteed
// faults such as division by zero or out-of-bounds indexing), and
// interprocedural findings (input-independent branches, comparisons
// against out-of-interval constants, functions unreachable from main).
// Diagnostics are reported in a deterministic order: source position,
// then check name. With -verify it additionally runs the IR verifier
// over the lowered program.
//
// Usage:
//
//	palint file.mc [file2.mc ...]   # lint source files
//	palint -subjects                # lint the built-in benchmark subjects
//
// Exit status: 0 clean, 1 findings reported, 2 parse/compile/verify
// errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/interproc"
	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/subjects"
)

func main() {
	var (
		lintSubjects = flag.Bool("subjects", false, "lint the built-in benchmark subjects instead of files")
		verify       = flag.Bool("verify", false, "also run the IR verifier over the lowered program")
		quiet        = flag.Bool("q", false, "suppress per-target clean lines")
	)
	flag.Parse()

	type unit struct {
		name string
		src  string
	}
	var units []unit
	switch {
	case *lintSubjects:
		for _, sub := range subjects.All() {
			units = append(units, unit{name: sub.Name, src: sub.Source})
		}
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "palint: %v\n", err)
				os.Exit(2)
			}
			units = append(units, unit{name: path, src: string(src)})
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	findings, failed := 0, false
	for _, u := range units {
		ast, err := lang.Parse(u.src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "palint: %s: %v\n", u.name, err)
			failed = true
			continue
		}
		prog, err := cfg.Compile(u.src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "palint: %s: %v\n", u.name, err)
			failed = true
			continue
		}
		if *verify {
			if err := analysis.Verify(prog); err != nil {
				fmt.Fprintf(os.Stderr, "palint: %s: %v\n", u.name, err)
				failed = true
				continue
			}
		}
		fds := analysis.Lint(ast, prog)
		fds = append(fds, interproc.Lint(interproc.ForProgram(prog))...)
		analysis.SortFindings(fds)
		for _, fd := range fds {
			fmt.Printf("%s:%s\n", u.name, fd)
		}
		findings += len(fds)
		if len(fds) == 0 && !*quiet {
			fmt.Printf("%s: clean\n", u.name)
		}
	}
	switch {
	case failed:
		os.Exit(2)
	case findings > 0:
		os.Exit(1)
	}
}
