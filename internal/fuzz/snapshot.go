// Campaign snapshot and restore: the exported state hooks behind the
// checkpoint/resume subsystem (package campaign). A Snapshot captures
// everything a campaign needs to continue deterministically — queue
// entries with their metadata, virgin maps, crash and bug dedup state,
// the auto-dictionary, stats, history, the RNG stream position, and the
// fuzz loop's mid-cycle position. Restore rebuilds a fuzzer from a
// snapshot such that continuing it reproduces, execution for execution,
// what an uninterrupted campaign would have done: derived state
// (top-rated champions, power-schedule running sums) is re-calibrated
// from the queue rather than trusted from the snapshot.
package fuzz

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/vm"
)

// countingSource wraps the campaign's random source and counts draws.
// math/rand sources are not serializable, so snapshots record the draw
// count and Restore fast-forwards a fresh source seeded identically:
// both Int63 and Uint64 advance the underlying generator by exactly one
// step, so replaying n draws of either reproduces the stream position.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// skipTo advances the source until n draws have been consumed.
func (c *countingSource) skipTo(n uint64) {
	for c.draws < n {
		c.src.Uint64()
		c.draws++
	}
}

// SnapEntry is the serialized form of a queue Entry. IDs are implicit:
// an entry's ID is its index in the snapshot's Entries slice, which
// preserves queue order.
type SnapEntry struct {
	Data      []byte
	Cov       []uint32
	Steps     int64
	Depth     int
	FoundAt   int64
	Handicap  int
	Favored   bool
	WasFuzzed bool
	IsSeed    bool
	// Provenance: the parent entry index (-1 for seeds), the mutation
	// stage that produced the entry, and the map cells it discovered
	// first. Old checkpoints gob-decode Parent as 0 and Stage/FirstCells
	// as zero values; restore treats Parent 0 on a seed entry as
	// pre-provenance data and rewrites it to -1. FirstCells is persisted
	// for checkpoint readers (paprof -genealogy works from the sealed
	// file alone) but recomputed on restore, where replaying the queue
	// rebuilds the identical sets.
	Parent     int
	Stage      uint8
	FirstCells []uint32
}

// SnapCrash is the serialized form of one crash-dedup record. Hash
// carries the stack-hash key for crash records; Key carries the
// ground-truth bug key for bug records.
type SnapCrash struct {
	Hash    uint64
	Key     string
	Crash   *vm.Crash
	Input   []byte
	Count   int
	FoundAt int64
}

// Snapshot is a complete, serializable image of a campaign at a safe
// point. All slices are canonically ordered (queue order; crashes by
// hash; bugs by key), so encoding the same state twice yields identical
// bytes — the property the checkpoint determinism tests rely on.
type Snapshot struct {
	Entries     []SnapEntry
	Virgin      []coverage.VirginCell
	CrashVirgin []coverage.VirginCell
	Crashes     []SnapCrash
	Bugs        []SnapCrash
	Faults      []InternalFault
	Stats       Stats
	History     []HistPoint
	Dict        [][]byte
	RNGDraws    uint64

	// Fuzz-loop position (see Fuzzer.midCycle and friends).
	PendingFavored int
	MidCycle       bool
	NextIndex      int
	CycleLen       int
	SampleEvery    int64
	NextSample     int64

	// JournalSeq is the campaign's emitted-event count at snapshot
	// time. The counter advances whether or not a journal writer is
	// attached, so this field is identical with journaling on or off;
	// on restore it tells the journal where to truncate so the resumed
	// replay re-emits a byte-identical tail. Old checkpoints decode it
	// as 0 (the journal then restarts its numbering, still gapless).
	JournalSeq uint64
}

// VirginCells returns the campaign's consumed virgin-map cells — every
// coverage cell any recorded execution ever set, with the observed hit
// buckets — for coverage cartography. Read-only; call at a safe point
// (after Fuzz returns or between queue entries).
func (f *Fuzzer) VirginCells() []coverage.VirginCell { return f.virgin.Cells() }

// Snapshot captures the campaign state. It must be called at a safe
// point: between queue entries (the checkpoint hook) or while the
// fuzzer is not running.
func (f *Fuzzer) Snapshot() *Snapshot {
	s := &Snapshot{
		Entries:        make([]SnapEntry, len(f.queue)),
		Virgin:         f.virgin.Cells(),
		CrashVirgin:    f.crashVirgin.Cells(),
		Faults:         append([]InternalFault(nil), f.faults...),
		Stats:          f.stats,
		History:        append([]HistPoint(nil), f.history...),
		Dict:           append([][]byte(nil), f.mut.dict...),
		RNGDraws:       f.rngSrc.draws,
		PendingFavored: f.pendingFavored,
		MidCycle:       f.midCycle,
		NextIndex:      f.qi,
		CycleLen:       f.qlen,
		SampleEvery:    f.sampleEvery,
		NextSample:     f.nextSample,
		JournalSeq:     f.events,
	}
	for i, e := range f.queue {
		s.Entries[i] = SnapEntry{
			Data:       e.Data,
			Cov:        e.Cov,
			Steps:      e.Steps,
			Depth:      e.Depth,
			FoundAt:    e.FoundAt,
			Handicap:   e.Handicap,
			Favored:    e.Favored,
			WasFuzzed:  e.WasFuzzed,
			IsSeed:     e.IsSeed,
			Parent:     e.Parent,
			Stage:      e.Stage,
			FirstCells: e.FirstCells,
		}
	}
	// A checkpoint claims everything up to JournalSeq is settled; flush
	// so the on-disk journal is at least that current before the
	// checkpoint that references it lands.
	if f.jrnl != nil {
		f.jrnl.Flush()
	}
	for h, rec := range f.crashes {
		s.Crashes = append(s.Crashes, SnapCrash{Hash: h, Crash: rec.Crash, Input: rec.Input, Count: rec.Count, FoundAt: rec.FoundAt})
	}
	sort.Slice(s.Crashes, func(i, j int) bool { return s.Crashes[i].Hash < s.Crashes[j].Hash })
	for k, rec := range f.bugs {
		s.Bugs = append(s.Bugs, SnapCrash{Key: k, Crash: rec.Crash, Input: rec.Input, Count: rec.Count, FoundAt: rec.FoundAt})
	}
	sort.Slice(s.Bugs, func(i, j int) bool { return s.Bugs[i].Key < s.Bugs[j].Key })
	return s
}

// Restore builds a fuzzer over prog from a snapshot. opts must match
// the options of the campaign that produced the snapshot (same seed,
// feedback, map size, profile, limits); the campaign checkpoint layer
// stores and validates that metadata. Derived state — top-rated
// champions and the power-schedule sums — is re-calibrated from the
// restored queue, and the RNG is fast-forwarded to the snapshot's
// stream position, so continuing the fuzzer reproduces an uninterrupted
// campaign exactly.
func Restore(prog *cfg.Program, opts Options, snap *Snapshot) (*Fuzzer, error) {
	if snap == nil {
		return nil, fmt.Errorf("fuzz: nil snapshot")
	}
	f, err := New(prog, opts)
	if err != nil {
		return nil, err
	}
	if err := f.restore(snap); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *Fuzzer) restore(snap *Snapshot) error {
	mapSize := uint32(f.cov.Len())
	f.queue = make([]*Entry, 0, len(snap.Entries))
	f.topRated = make(map[uint32]*Entry)
	if f.guide != nil {
		f.covCount = make(map[uint32]int)
	}
	f.sumSteps, f.sumCov = 0, 0
	// maxDepth is derived state, recomputed from the queue below.
	f.maxDepth = 0
	for i, se := range snap.Entries {
		if len(se.Data) > f.opts.MaxInputLen {
			return fmt.Errorf("fuzz: snapshot entry %d is %d bytes, exceeds input cap %d", i, len(se.Data), f.opts.MaxInputLen)
		}
		for _, idx := range se.Cov {
			if idx >= mapSize {
				return fmt.Errorf("fuzz: snapshot entry %d covers index %d outside map of size %d", i, idx, mapSize)
			}
		}
		parent := se.Parent
		if se.IsSeed && parent == 0 {
			// Pre-provenance checkpoints gob-decode Parent as 0; a seed
			// entry's parent is by definition -1.
			parent = -1
		}
		e := &Entry{
			ID:        i,
			Data:      append([]byte(nil), se.Data...),
			Cov:       append([]uint32(nil), se.Cov...),
			Steps:     se.Steps,
			Depth:     se.Depth,
			FoundAt:   se.FoundAt,
			Handicap:  se.Handicap,
			Favored:   se.Favored,
			WasFuzzed: se.WasFuzzed,
			IsSeed:    se.IsSeed,
			Parent:    parent,
			Stage:     se.Stage,
			// FirstCells deliberately not copied: updateTopRated below
			// recomputes the identical discovery sets from queue order.
		}
		f.queue = append(f.queue, e)
		f.sumSteps += e.Steps
		f.sumCov += int64(len(e.Cov))
		if e.Depth > f.maxDepth {
			f.maxDepth = e.Depth
		}
		// Replaying champion updates in queue order reproduces the
		// incremental top-rated map exactly (ties keep the earlier
		// entry, as they did originally).
		f.updateTopRated(e)
		f.noteCov(e)
	}
	if err := f.virgin.SetCells(snap.Virgin); err != nil {
		return err
	}
	if err := f.crashVirgin.SetCells(snap.CrashVirgin); err != nil {
		return err
	}
	f.crashes = make(map[uint64]*CrashRec, len(snap.Crashes))
	for _, sc := range snap.Crashes {
		if sc.Crash == nil {
			return fmt.Errorf("fuzz: snapshot crash record %#x has no report", sc.Hash)
		}
		f.crashes[sc.Hash] = &CrashRec{Crash: sc.Crash, Input: sc.Input, Count: sc.Count, FoundAt: sc.FoundAt}
	}
	f.bugs = make(map[string]*CrashRec, len(snap.Bugs))
	for _, sc := range snap.Bugs {
		if sc.Crash == nil {
			return fmt.Errorf("fuzz: snapshot bug record %q has no report", sc.Key)
		}
		f.bugs[sc.Key] = &CrashRec{Crash: sc.Crash, Input: sc.Input, Count: sc.Count, FoundAt: sc.FoundAt}
	}
	f.faults = append([]InternalFault(nil), snap.Faults...)
	f.stats = snap.Stats
	f.history = append([]HistPoint(nil), snap.History...)

	// The dictionary (user tokens plus cmplog-derived auto-tokens) is
	// restored wholesale: token order matters because havoc picks
	// tokens by index.
	f.mut.dict = nil
	f.dictSeen = make(map[string]bool, len(snap.Dict))
	for _, tok := range snap.Dict {
		t := append([]byte(nil), tok...)
		f.mut.dict = append(f.mut.dict, t)
		f.dictSeen[string(t)] = true
	}

	if snap.CycleLen > len(f.queue) || snap.NextIndex > snap.CycleLen || snap.NextIndex < 0 {
		return fmt.Errorf("fuzz: snapshot cycle position %d/%d inconsistent with queue of %d", snap.NextIndex, snap.CycleLen, len(f.queue))
	}
	f.pendingFavored = snap.PendingFavored
	f.midCycle = snap.MidCycle
	f.qi, f.qlen = snap.NextIndex, snap.CycleLen
	f.sampleEvery, f.nextSample = snap.SampleEvery, snap.NextSample
	f.samplingRestored = snap.SampleEvery > 0

	f.rngSrc.skipTo(snap.RNGDraws)
	// Journal resume: restore the emitted-event counter and truncate
	// the journal back to it, so the replayed executions re-emit an
	// identical tail (gapless, byte-for-byte). A fleet-shared journal
	// is never truncated — the supervisor owns the stream and other
	// workers' events must survive this worker's restore.
	f.events = snap.JournalSeq
	if f.jrnl != nil && !f.opts.JournalShared {
		if err := f.jrnl.TruncateTo(f.events); err != nil {
			return fmt.Errorf("fuzz: truncating journal to seq %d: %w", f.events, err)
		}
	}
	// The CGT patch plan is not checkpointed: it is a pure function of
	// the virgin map, so a restored campaign replans from the restored
	// virgin state (the same boundary-determinism rule as cycle starts).
	// Guide state (frontier weights, coverage counts) is equally
	// derived and was rebuilt above / is refreshed here.
	f.replanCGT()
	f.updateGuide()
	return nil
}

// Faults returns the recorded internal-fault records (copies).
func (f *Fuzzer) Faults() []InternalFault {
	return append([]InternalFault(nil), f.faults...)
}
