package evalharness

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/coverage"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/subjects"
	"repro/internal/triage"
	"repro/internal/vm"
)

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
}

// Table1 renders the paper's Table I: per-subject function counts and
// final queue sizes under the edge and path feedbacks (medians across
// runs).
func (s *SuiteResult) Table1(w io.Writer) {
	fmt.Fprintln(w, "TABLE I — subjects statistics: queue items after fuzzing")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tType\tFunctions\tQueue (edge)\tQueue (path)\t")
	for _, sub := range s.Cfg.Subjects {
		sj := subjects.Get(sub)
		prog := sj.MustProgram()
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t\n",
			sub, sj.TypeLabel, len(prog.Funcs),
			s.medianQueue(sub, strategy.PCGuard),
			s.medianQueue(sub, strategy.Path))
	}
	tw.Flush()
}

func (s *SuiteResult) medianQueue(subject string, f strategy.Name) int {
	var qs []int
	for _, rr := range s.Runs(subject, f) {
		qs = append(qs, rr.Report.QueueLen)
	}
	return stats.MedianInt(qs)
}

// bugCrash formats "bugs (crashes)".
func bugCrash(bugs, crashes int) string { return fmt.Sprintf("%d (%d)", bugs, crashes) }

// Table2 renders Table II: cumulative unique bugs (and unique crashes)
// per fuzzer with the paper's pairwise intersections and subtractions.
func (s *SuiteResult) Table2(w io.Writer) {
	s.bugTable(w, "TABLE II — unique bugs (unique crashes) cumulative across runs",
		[]strategy.Name{strategy.Path, strategy.PCGuard, strategy.Cull, strategy.Opp},
		[][2]strategy.Name{
			{strategy.Path, strategy.PCGuard}, {strategy.Cull, strategy.PCGuard},
			{strategy.Opp, strategy.PCGuard}, {strategy.Opp, strategy.Cull},
		},
		[][2]strategy.Name{
			{strategy.Path, strategy.PCGuard}, {strategy.PCGuard, strategy.Path},
			{strategy.Cull, strategy.PCGuard}, {strategy.PCGuard, strategy.Cull},
			{strategy.Opp, strategy.PCGuard}, {strategy.PCGuard, strategy.Opp},
			{strategy.Opp, strategy.Cull}, {strategy.Cull, strategy.Opp},
		})
}

// Table7 renders Appendix C's Table VII: the path-aware fuzzers against
// PathAFL.
func (s *SuiteResult) Table7(w io.Writer) {
	s.bugTable(w, "TABLE VII — unique bugs vs PathAFL, cumulative across runs",
		[]strategy.Name{strategy.Path, strategy.PathAFL, strategy.Cull, strategy.Opp},
		[][2]strategy.Name{
			{strategy.Path, strategy.PathAFL}, {strategy.Cull, strategy.PathAFL},
			{strategy.Opp, strategy.PathAFL},
		},
		[][2]strategy.Name{
			{strategy.Path, strategy.PathAFL}, {strategy.PathAFL, strategy.Path},
			{strategy.Cull, strategy.PathAFL}, {strategy.PathAFL, strategy.Cull},
			{strategy.Opp, strategy.PathAFL}, {strategy.PathAFL, strategy.Opp},
		})
}

// Table8 renders Appendix C's Table VIII: PathAFL against its AFL base.
func (s *SuiteResult) Table8(w io.Writer) {
	s.bugTable(w, "TABLE VIII — unique bugs, PathAFL vs AFL, cumulative across runs",
		[]strategy.Name{strategy.PathAFL, strategy.AFL},
		[][2]strategy.Name{{strategy.PathAFL, strategy.AFL}},
		[][2]strategy.Name{
			{strategy.PathAFL, strategy.AFL}, {strategy.AFL, strategy.PathAFL},
		})
}

// Table10 renders Appendix D's Table X: the random-culling ablation.
func (s *SuiteResult) Table10(w io.Writer) {
	s.bugTable(w, "TABLE X — culling ablation: path vs cull_r vs cull, cumulative across runs",
		[]strategy.Name{strategy.Path, strategy.CullR, strategy.Cull},
		[][2]strategy.Name{
			{strategy.Path, strategy.CullR}, {strategy.Cull, strategy.CullR},
		},
		[][2]strategy.Name{
			{strategy.Path, strategy.CullR}, {strategy.CullR, strategy.Path},
			{strategy.Cull, strategy.CullR}, {strategy.CullR, strategy.Cull},
		})
}

// bugTable is the shared renderer behind Tables II, VII, VIII and X.
func (s *SuiteResult) bugTable(w io.Writer, title string, singles []strategy.Name, inters, subs [][2]strategy.Name) {
	fmt.Fprintln(w, title)
	tw := newTab(w)
	var hdr strings.Builder
	hdr.WriteString("Benchmark\t")
	for _, f := range singles {
		fmt.Fprintf(&hdr, "%s\t", f)
	}
	for _, p := range inters {
		fmt.Fprintf(&hdr, "%s∩%s\t", p[0], p[1])
	}
	for _, p := range subs {
		fmt.Fprintf(&hdr, "%s\\%s\t", p[0], p[1])
	}
	fmt.Fprintln(tw, hdr.String())

	type cell struct{ bugs, crashes int }
	totals := make(map[string]*cell)
	cellKeyS := func(f strategy.Name) string { return "s:" + string(f) }
	cellKeyI := func(p [2]strategy.Name) string { return "i:" + string(p[0]) + ":" + string(p[1]) }
	cellKeyD := func(p [2]strategy.Name) string { return "d:" + string(p[0]) + ":" + string(p[1]) }

	addTotal := func(key string, bugs, crashes int) {
		c := totals[key]
		if c == nil {
			c = &cell{}
			totals[key] = c
		}
		c.bugs += bugs
		c.crashes += crashes
	}

	for _, sub := range s.Cfg.Subjects {
		var row strings.Builder
		fmt.Fprintf(&row, "%s\t", sub)
		bugSets := make(map[strategy.Name]triage.Set[string])
		crashSets := make(map[strategy.Name]triage.Set[uint64])
		need := map[strategy.Name]bool{}
		for _, f := range singles {
			need[f] = true
		}
		for _, p := range append(append([][2]strategy.Name{}, inters...), subs...) {
			need[p[0]], need[p[1]] = true, true
		}
		for f := range need {
			bugSets[f] = s.CumulativeBugs(sub, f)
			crashSets[f] = s.CumulativeCrashes(sub, f)
		}
		for _, f := range singles {
			b, c := bugSets[f].Len(), crashSets[f].Len()
			fmt.Fprintf(&row, "%s\t", bugCrash(b, c))
			addTotal(cellKeyS(f), b, c)
		}
		for _, p := range inters {
			b := triage.Intersect(bugSets[p[0]], bugSets[p[1]]).Len()
			c := triage.Intersect(crashSets[p[0]], crashSets[p[1]]).Len()
			fmt.Fprintf(&row, "%s\t", bugCrash(b, c))
			addTotal(cellKeyI(p), b, c)
		}
		for _, p := range subs {
			b := triage.Subtract(bugSets[p[0]], bugSets[p[1]]).Len()
			c := triage.Subtract(crashSets[p[0]], crashSets[p[1]]).Len()
			fmt.Fprintf(&row, "%s\t", bugCrash(b, c))
			addTotal(cellKeyD(p), b, c)
		}
		fmt.Fprintln(tw, row.String())
	}
	var tot strings.Builder
	tot.WriteString("TOTAL\t")
	for _, f := range singles {
		c := totals[cellKeyS(f)]
		fmt.Fprintf(&tot, "%s\t", bugCrash(c.bugs, c.crashes))
	}
	for _, p := range inters {
		c := totals[cellKeyI(p)]
		fmt.Fprintf(&tot, "%s\t", bugCrash(c.bugs, c.crashes))
	}
	for _, p := range subs {
		c := totals[cellKeyD(p)]
		fmt.Fprintf(&tot, "%s\t", bugCrash(c.bugs, c.crashes))
	}
	fmt.Fprintln(tw, tot.String())
	tw.Flush()
}

// Table3 renders Table III: median queue sizes and ratios vs pcguard
// with the geometric-mean row.
func (s *SuiteResult) Table3(w io.Writer) {
	fmt.Fprintln(w, "TABLE III — median queue sizes and ratios vs pcguard")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tpath\tpcguard\tcull\topp\tpath/pcg\tcull/pcg\topp/pcg\t")
	var rp, rc, ro []float64
	for _, sub := range s.Cfg.Subjects {
		qp := s.medianQueue(sub, strategy.Path)
		qg := s.medianQueue(sub, strategy.PCGuard)
		qc := s.medianQueue(sub, strategy.Cull)
		qo := s.medianQueue(sub, strategy.Opp)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%s\t%s\t\n", sub, qp, qg, qc, qo,
			stats.Ratio(float64(qp), float64(qg)),
			stats.Ratio(float64(qc), float64(qg)),
			stats.Ratio(float64(qo), float64(qg)))
		if qg > 0 {
			rp = append(rp, float64(qp)/float64(qg))
			rc = append(rc, float64(qc)/float64(qg))
			ro = append(ro, float64(qo)/float64(qg))
		}
	}
	fmt.Fprintf(tw, "GEOMEAN\t\t\t\t\t%.2f\t%.2f\t%.2f\t\n",
		stats.GeoMean(rp), stats.GeoMean(rc), stats.GeoMean(ro))
	tw.Flush()
}

// Table4 renders Table IV: cumulative edge coverage and set
// subtractions vs pcguard.
func (s *SuiteResult) Table4(w io.Writer) {
	fmt.Fprintln(w, "TABLE IV — edge coverage cumulative across runs, with set subtractions")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tpath\tpcguard\tcull\topp\tpath\\pcg\tcull\\pcg\topp\\pcg\t")
	var tp, tg, tc, to, dp, dc, do int
	for _, sub := range s.Cfg.Subjects {
		ep := s.CumulativeEdges(sub, strategy.Path)
		eg := s.CumulativeEdges(sub, strategy.PCGuard)
		ec := s.CumulativeEdges(sub, strategy.Cull)
		eo := s.CumulativeEdges(sub, strategy.Opp)
		sp := triage.Subtract(ep, eg).Len()
		sc := triage.Subtract(ec, eg).Len()
		so := triage.Subtract(eo, eg).Len()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			sub, ep.Len(), eg.Len(), ec.Len(), eo.Len(), sp, sc, so)
		tp += ep.Len()
		tg += eg.Len()
		tc += ec.Len()
		to += eo.Len()
		dp += sp
		dc += sc
		do += so
	}
	fmt.Fprintf(tw, "TOTAL\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n", tp, tg, tc, to, dp, dc, do)
	tw.Flush()
}

// Table5 renders Appendix A's Table V: input (seed) processing time for
// a large queue under edge vs path instrumentation. The queues are the
// union of the suite's pcguard run queues; each is replayed once per
// instrumentation and wall-clock timed.
func (s *SuiteResult) Table5(w io.Writer) {
	fmt.Fprintln(w, "TABLE V — input processing time: pcguard vs path instrumentation")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tpcguard\tpath\tpath/pcguard\t")
	var ratios []float64
	for _, sub := range s.Cfg.Subjects {
		var queue [][]byte
		for _, rr := range s.Runs(sub, strategy.PCGuard) {
			queue = append(queue, rr.Report.Queue...)
		}
		if len(queue) == 0 {
			continue
		}
		te, err := ReplayTimed(sub, queue, instrument.FeedbackEdge)
		if err != nil {
			fmt.Fprintf(tw, "%s\terror: %v\t\t\t\n", sub, err)
			continue
		}
		tp, err := ReplayTimed(sub, queue, instrument.FeedbackPath)
		if err != nil {
			fmt.Fprintf(tw, "%s\terror: %v\t\t\t\n", sub, err)
			continue
		}
		r := float64(tp) / float64(te)
		ratios = append(ratios, r)
		fmt.Fprintf(tw, "%s\t%.3fms\t%.3fms\t%.2f\t\n",
			sub, float64(te)/1e6, float64(tp)/1e6, r)
	}
	fmt.Fprintf(tw, "GEOMEAN\t\t\t%.2f\t\n", stats.GeoMean(ratios))
	tw.Flush()
}

// Table6 renders Appendix B's Table VI: median per-run unique bugs and
// the same pairwise columns as Table II, computed per run index and
// medianed.
func (s *SuiteResult) Table6(w io.Writer) {
	fmt.Fprintln(w, "TABLE VI — median unique bugs per run with pairwise comparisons")
	tw := newTab(w)
	singles := []strategy.Name{strategy.Path, strategy.PCGuard, strategy.Cull, strategy.Opp}
	inters := [][2]strategy.Name{
		{strategy.Path, strategy.PCGuard}, {strategy.Cull, strategy.PCGuard},
		{strategy.Opp, strategy.PCGuard}, {strategy.Opp, strategy.Cull},
	}
	subs := [][2]strategy.Name{
		{strategy.Path, strategy.PCGuard}, {strategy.PCGuard, strategy.Path},
		{strategy.Cull, strategy.PCGuard}, {strategy.PCGuard, strategy.Cull},
		{strategy.Opp, strategy.PCGuard}, {strategy.PCGuard, strategy.Opp},
		{strategy.Opp, strategy.Cull}, {strategy.Cull, strategy.Opp},
	}
	var hdr strings.Builder
	hdr.WriteString("Benchmark\t")
	for _, f := range singles {
		fmt.Fprintf(&hdr, "%s\t", f)
	}
	for _, p := range inters {
		fmt.Fprintf(&hdr, "%s∩%s\t", p[0], p[1])
	}
	for _, p := range subs {
		fmt.Fprintf(&hdr, "%s\\%s\t", p[0], p[1])
	}
	fmt.Fprintln(tw, hdr.String())

	nCols := len(singles) + len(inters) + len(subs)
	colTotals := make([]int, nCols)
	for _, sub := range s.Cfg.Subjects {
		var row strings.Builder
		fmt.Fprintf(&row, "%s\t", sub)
		col := 0
		emit := func(vals []int) {
			m := stats.MedianInt(vals)
			fmt.Fprintf(&row, "%d\t", m)
			colTotals[col] += m
			col++
		}
		perRunBugs := func(f strategy.Name, r int) triage.Set[string] {
			runs := s.Runs(sub, f)
			if r >= len(runs) || runs[r] == nil {
				return triage.NewSet[string]()
			}
			return triage.BugSet(runs[r].Report)
		}
		for _, f := range singles {
			var vals []int
			for r := 0; r < s.Cfg.Runs; r++ {
				vals = append(vals, perRunBugs(f, r).Len())
			}
			emit(vals)
		}
		for _, p := range inters {
			var vals []int
			for r := 0; r < s.Cfg.Runs; r++ {
				vals = append(vals, triage.Intersect(perRunBugs(p[0], r), perRunBugs(p[1], r)).Len())
			}
			emit(vals)
		}
		for _, p := range subs {
			var vals []int
			for r := 0; r < s.Cfg.Runs; r++ {
				vals = append(vals, triage.Subtract(perRunBugs(p[0], r), perRunBugs(p[1], r)).Len())
			}
			emit(vals)
		}
		fmt.Fprintln(tw, row.String())
	}
	var tot strings.Builder
	tot.WriteString("TOTAL\t")
	for _, v := range colTotals {
		fmt.Fprintf(&tot, "%d\t", v)
	}
	fmt.Fprintln(tw, tot.String())
	tw.Flush()
}

// Table9 renders Appendix C's Table IX: crashes under AFL's original
// uniqueness notion vs stack-hash unique crashes, for PathAFL and AFL.
func (s *SuiteResult) Table9(w io.Writer) {
	fmt.Fprintln(w, "TABLE IX — crashes (AFL uniqueness notion) and unique crashes (stack hash)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tpathafl crashes\tpathafl unique\tafl crashes\tafl unique\t")
	var tpc, tpu, tac, tau int64
	for _, sub := range s.Cfg.Subjects {
		var pc, ac int64
		for _, rr := range s.Runs(sub, strategy.PathAFL) {
			pc += rr.Report.Stats.AFLUniqueCrashes
		}
		for _, rr := range s.Runs(sub, strategy.AFL) {
			ac += rr.Report.Stats.AFLUniqueCrashes
		}
		pu := int64(s.CumulativeCrashes(sub, strategy.PathAFL).Len())
		au := int64(s.CumulativeCrashes(sub, strategy.AFL).Len())
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t\n", sub, pc, pu, ac, au)
		tpc += pc
		tpu += pu
		tac += ac
		tau += au
	}
	fmt.Fprintf(tw, "TOTAL\t%d\t%d\t%d\t%d\t\n", tpc, tpu, tac, tau)
	tw.Flush()
}

// Figure2 renders the queue-size-over-time comparison of path, cull,
// opp and pcguard on one subject (run 0), as an ASCII series.
func (s *SuiteResult) Figure2(w io.Writer, subject string) {
	fmt.Fprintf(w, "FIGURE 2 — queue size over time (%s, run 0)\n", subject)
	fuzzers := []strategy.Name{strategy.Path, strategy.Cull, strategy.Opp, strategy.PCGuard}
	series := make(map[strategy.Name][]fuzz.HistPoint)
	maxQ := 1
	for _, f := range fuzzers {
		runs := s.Runs(subject, f)
		if len(runs) == 0 || runs[0] == nil {
			continue
		}
		series[f] = runs[0].Report.History
		for _, h := range series[f] {
			if h.QueueLen > maxQ {
				maxQ = h.QueueLen
			}
		}
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "execs%\tpath\tcull\topp\tpcguard\t")
	const buckets = 16
	for b := 1; b <= buckets; b++ {
		frac := float64(b) / buckets
		var row strings.Builder
		fmt.Fprintf(&row, "%d%%\t", int(frac*100))
		for _, f := range fuzzers {
			h := series[f]
			if len(h) == 0 {
				row.WriteString("-\t")
				continue
			}
			total := h[len(h)-1].Execs
			q := 0
			for _, pt := range h {
				if float64(pt.Execs) <= frac*float64(total)+1 {
					q = pt.QueueLen
				}
			}
			fmt.Fprintf(&row, "%d\t", q)
		}
		fmt.Fprintln(tw, row.String())
	}
	tw.Flush()
	fmt.Fprintf(w, "(cull's sawtooth and opp's mid-run feedback switch are the paper's Fig. 2 shapes)\n")
}

// Figure3 renders the Venn decompositions of cumulative unique bugs:
// path vs pcguard, {cull, opp} vs pcguard, and path vs cull vs opp.
func (s *SuiteResult) Figure3(w io.Writer) {
	fmt.Fprintln(w, "FIGURE 3 — Venn decompositions of unique bugs across all benchmarks")
	all := func(f strategy.Name) triage.Set[string] {
		out := triage.NewSet[string]()
		for _, sub := range s.Cfg.Subjects {
			for k := range s.CumulativeBugs(sub, f) {
				out.Add(k)
			}
		}
		return out
	}
	path, pcg, cull, opp := all(strategy.Path), all(strategy.PCGuard), all(strategy.Cull), all(strategy.Opp)

	v := triage.Venn(path, pcg)
	fmt.Fprintf(w, "  path vs pcguard:  path-only %d | common %d | pcguard-only %d\n", v.OnlyA, v.Common, v.OnlyB)
	v3 := triage.Venn3(cull, opp, pcg)
	fmt.Fprintf(w, "  cull vs opp vs pcguard: cull-only %d, opp-only %d, pcguard-only %d, cull∩opp %d, cull∩pcg %d, opp∩pcg %d, all %d\n",
		v3.OnlyA, v3.OnlyB, v3.OnlyC, v3.AB, v3.AC, v3.BC, v3.ABC)
	w3 := triage.Venn3(path, cull, opp)
	fmt.Fprintf(w, "  path vs cull vs opp: path-only %d, cull-only %d, opp-only %d, path∩cull %d, path∩opp %d, cull∩opp %d, all %d\n",
		w3.OnlyA, w3.OnlyB, w3.OnlyC, w3.AB, w3.AC, w3.BC, w3.ABC)
}

// ReplayTimed replays a corpus once under the given feedback,
// returning wall-clock nanoseconds including the novelty bookkeeping a
// fuzzer performs per input (classification plus a virgin scan). It is
// exported for the Table V bench.
func ReplayTimed(subject string, queue [][]byte, fb instrument.Feedback) (int64, error) {
	prog, err := subjects.Get(subject).Program()
	if err != nil {
		return 0, err
	}
	m := coverage.NewMap(coverage.DefaultMapSize)
	tr, err := instrument.New(fb, prog, m, instrument.Config{})
	if err != nil {
		return 0, err
	}
	virgin := coverage.NewVirgin(m.Len())
	lim := vm.DefaultLimits()
	start := time.Now()
	for _, in := range queue {
		m.Reset()
		vm.Run(prog, "main", in, tr, lim)
		m.ClassifySparse()
		virgin.MergeSparse(m)
	}
	return time.Since(start).Nanoseconds(), nil
}
