package evalharness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/strategy"
)

// smallSuite runs a scaled-down evaluation used across the harness
// tests. The budget is tiny compared to the real evaluation; the tests
// only check structure, determinism and the phenomena that appear even
// at small scale.
func smallSuite(t *testing.T, subjectsList []string, fuzzers []strategy.Name, runs int, budget int64) *SuiteResult {
	t.Helper()
	sr, err := RunSuite(Config{
		Subjects: subjectsList,
		Fuzzers:  fuzzers,
		Runs:     runs,
		Budget:   budget,
		MapSize:  1 << 13,
		BaseSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestSuiteRunsAndRendersTables(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	subs := []string{"flvmeta", "jhead"}
	sr := smallSuite(t, subs, strategy.AllNames, 2, 20000)

	for _, sub := range subs {
		for _, f := range strategy.AllNames {
			runs := sr.Runs(sub, f)
			if len(runs) != 2 {
				t.Fatalf("%s/%s: %d runs, want 2", sub, f, len(runs))
			}
			for i, rr := range runs {
				if rr == nil {
					t.Fatalf("%s/%s run %d missing", sub, f, i)
				}
				if rr.Report.Stats.Execs == 0 {
					t.Errorf("%s/%s run %d: no executions", sub, f, i)
				}
			}
		}
	}

	var buf bytes.Buffer
	sr.Table1(&buf)
	sr.Table2(&buf)
	sr.Table3(&buf)
	sr.Table4(&buf)
	sr.Table5(&buf)
	sr.Table6(&buf)
	sr.Table7(&buf)
	sr.Table8(&buf)
	sr.Table9(&buf)
	sr.Table10(&buf)
	sr.Figure2(&buf, "flvmeta")
	sr.Figure3(&buf)
	out := buf.String()
	for _, want := range []string{
		"TABLE I —", "TABLE II —", "TABLE III —", "TABLE IV —", "TABLE V —",
		"TABLE VI —", "TABLE VII —", "TABLE VIII —", "TABLE IX —", "TABLE X —",
		"FIGURE 2 —", "FIGURE 3 —", "GEOMEAN", "TOTAL", "flvmeta", "jhead",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
	if testing.Verbose() {
		t.Log("\n" + out)
	}
}

func TestJheadEasyBugsFoundByAll(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	// jhead's bugs are shallow; the paper reports every fuzzer finds
	// (nearly) all of them. At small scale we require every main
	// configuration to find at least 3 of the 5.
	sr := smallSuite(t, []string{"jhead"},
		[]strategy.Name{strategy.Path, strategy.PCGuard, strategy.Cull}, 2, 60000)
	for _, f := range []strategy.Name{strategy.Path, strategy.PCGuard, strategy.Cull} {
		n := sr.CumulativeBugs("jhead", f).Len()
		if n < 3 {
			t.Errorf("%s found %d jhead bugs, want >= 3", f, n)
		}
		t.Logf("%s: %d bugs", f, n)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	run := func() int {
		sr := smallSuite(t, []string{"flvmeta"}, []strategy.Name{strategy.Path}, 1, 15000)
		return sr.Runs("flvmeta", strategy.Path)[0].Report.QueueLen
	}
	if a, b := run(), run(); a != b {
		t.Errorf("suite not deterministic: queue %d vs %d", a, b)
	}
}

// TestSuiteFleetModeDeterministic pins fleet-mode evaluation: the same
// configuration run twice as a 2-worker fleet produces byte-identical
// merged reports, so eval output regeneration stays reproducible with
// parallel workers.
func TestSuiteFleetModeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	run := func() []byte {
		sr, err := RunSuite(Config{
			Subjects:       []string{"flvmeta"},
			Fuzzers:        []strategy.Name{strategy.Path},
			Runs:           1,
			Budget:         15000,
			MapSize:        1 << 13,
			BaseSeed:       3,
			FleetWorkers:   2,
			FleetSyncEvery: 5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := sr.Runs("flvmeta", strategy.Path)[0].Report
		if rep.Stats.Execs < 2*15000 {
			t.Fatalf("fleet run executed %d execs, want 2 workers x 15000", rep.Stats.Execs)
		}
		data, err := campaign.CanonicalReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Errorf("fleet-mode suite not deterministic (%d vs %d canonical bytes)", len(a), len(b))
	}
}

func TestSummaryRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	sr := smallSuite(t, []string{"mp3gain"}, strategy.AllNames, 2, 20000)
	var buf bytes.Buffer
	sr.Summary(&buf)
	out := buf.String()
	for _, want := range []string{"SUMMARY", "cull total", "queue growth", "opp recovered", "edge coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if testing.Verbose() {
		t.Log("\n" + out)
	}
}

func TestCumulativeAccessorsEmpty(t *testing.T) {
	sr := &SuiteResult{Cfg: Config{}.withDefaults(), Results: map[string]map[strategy.Name][]*RunResult{}}
	if sr.Runs("nope", strategy.Path) != nil {
		t.Error("missing subject should return nil runs")
	}
	if sr.CumulativeBugs("nope", strategy.Path).Len() != 0 {
		t.Error("missing subject should have no bugs")
	}
}
