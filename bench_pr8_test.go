package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/subjects"
	"repro/internal/vm"
)

// Analysis-guided fuzzing benchmarks: guided campaigns (interprocedural
// input-dependency facts focusing havoc bytes, boosting frontier
// energy, vetoing input-independent cmplog sites, and pre-consuming
// infeasible path cells) vs the identical campaign with the guide off.
// Both arms use edge feedback (pcguard), where every guidance channel
// engages — under pure path feedback there is no per-branch projection,
// so guidance reduces to the cmplog veto and CGT dead cells only.
//
// The coverage metric is the DEFICIT AREA: sum over the campaign of
// (target − covered cells) per exec, where the per-seed target is the
// weakest arm's final coverage — a level every arm reached. The deficit
// integrates execs-to-coverage over every coverage level at once (it
// equals the sum, over cells up to the target, of the exec count at
// which that cell fell), so one straggler cell cannot dominate the way
// it dominates a plain time-to-last-cell race. Discovery of the final
// few cells is still a heavy-tailed stochastic event, so alongside the
// guided-vs-base ratio the bench reports the SAME statistic between two
// independently-seeded base arms (the null ratio): only a speedup
// outside the null band is evidence, in either direction.
// TestWriteBenchPR8 freezes the numbers into BENCH_PR8.json.

const (
	// benchPR8Budget is the per-arm campaign budget. Long enough that
	// every arm leaves the seed-dominated opening and the guided arm's
	// frontier weighting has many queue cycles to act; short enough that
	// the nontrivial subjects have not all saturated.
	benchPR8Budget = 150000
	// benchPR8Samples sets the history sampling grid: budget/samples =
	// 250-exec resolution on the deficit integral.
	benchPR8Samples = 600
	// benchPR8Seeds is the per-arm trial count. Straggler-cell discovery
	// is heavy-tailed (a single seed can contribute half a subject's
	// total deficit), so the totals need this many trials before the
	// ratio stabilises; the null ratio reports how far two equal-size
	// base samples still sit apart at this count.
	benchPR8Seeds = 50
)

func benchPR8Opts(guided bool, seed int64) fuzz.Options {
	return fuzz.Options{
		Feedback:       instrument.FeedbackEdge,
		Seed:           seed,
		MapSize:        1 << 12,
		Entry:          "main",
		Limits:         vm.DefaultLimits(),
		AnalysisGuide:  guided,
		HistorySamples: benchPR8Samples,
	}
}

// benchPR8Arm runs one campaign arm to the shared budget and returns
// its report (history sampled every budget/benchPR8Samples execs).
func benchPR8Arm(tb testing.TB, subject string, guided bool, seed int64) *fuzz.Report {
	tb.Helper()
	sub := subjects.Get(subject)
	prog, err := sub.Program()
	if err != nil {
		tb.Fatal(err)
	}
	f, err := fuzz.New(prog, benchPR8Opts(guided, seed))
	if err != nil {
		tb.Fatal(err)
	}
	for _, s := range sub.Seeds {
		f.AddSeed(s)
	}
	f.Fuzz(benchPR8Budget)
	return f.Report()
}

// covDeficit integrates the covered-cell shortfall against target over
// the sampled history: Σ max(0, target − cov(t)) · Δexecs.
func covDeficit(r *fuzz.Report, target int) float64 {
	var d, prev float64
	for _, h := range r.History {
		miss := target - h.CovCount
		if miss < 0 {
			miss = 0
		}
		d += float64(miss) * (float64(h.Execs) - prev)
		prev = float64(h.Execs)
	}
	return d
}

// execsToBug is the exec count of the first ground-truth bug find, or
// -1 when the arm found none inside the budget.
func execsToBug(r *fuzz.Report) int64 {
	first := int64(-1)
	for _, rec := range r.Bugs {
		if first < 0 || rec.FoundAt < first {
			first = rec.FoundAt
		}
	}
	return first
}

func finalCov(r *fuzz.Report) int {
	if n := len(r.History); n > 0 {
		return r.History[n-1].CovCount
	}
	return 0
}

// benchPR8 is the persisted schema of BENCH_PR8.json.
type benchPR8 struct {
	Note     string                 `json:"note"`
	Budget   int64                  `json:"budget_execs"`
	Seeds    int                    `json:"seeds"`
	Subjects map[string]benchPR8Sub `json:"subjects"`
}

type benchPR8Sub struct {
	// Total coverage-deficit area per arm over all seeds (lower =
	// faster to coverage). Alt is the null arm: the base configuration
	// on an independent seed set.
	BaseDeficit   float64 `json:"base_deficit"`
	GuidedDeficit float64 `json:"guided_deficit"`
	AltDeficit    float64 `json:"alt_deficit"`
	// CovSpeedup = base/guided deficit; > 1 means the guided arm
	// carried less shortfall (reached coverage levels sooner).
	// NullRatio = base/alt is the identical statistic between two
	// base-configuration samples: its distance from 1.0 is the seed
	// noise floor, and only a CovSpeedup outside that band is evidence.
	// CovSpeedupVsAlt = alt/guided cross-checks against the other base
	// sample: a genuine effect clears the band on both ratios, while a
	// lucky or unlucky base draw shows up on only one of them.
	CovSpeedup      float64 `json:"cov_speedup"`
	NullRatio       float64 `json:"null_ratio"`
	CovSpeedupVsAlt float64 `json:"cov_speedup_vs_alt"`
	// Median final covered cells per arm at the full budget, and the
	// seeds where one arm ended strictly ahead of the other.
	BaseFinalCov    float64 `json:"base_final_cov"`
	GuidedFinalCov  float64 `json:"guided_final_cov"`
	GuidedCovWins   int     `json:"guided_final_cov_wins"`
	GuidedCovLosses int     `json:"guided_final_cov_losses"`
	// Median execs to the first ground-truth bug; -1 when the median
	// seed found none inside the budget. BugSpeedup is the median
	// paired first-bug ratio over seeds where both arms found one
	// (0 = no such seed).
	BaseExecsToBug   float64 `json:"base_execs_to_bug"`
	GuidedExecsToBug float64 `json:"guided_execs_to_bug"`
	BugSpeedup       float64 `json:"bug_speedup"`
}

func medianI64(xs []int64) float64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return float64(s[n/2-1]+s[n/2]) / 2
}

func medianF64(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func benchPR8Subject(tb testing.TB, subject string) benchPR8Sub {
	tb.Helper()
	var covB, covG, toBugB, toBugG []int64
	var bugRatios []float64
	s := benchPR8Sub{}
	for seed := int64(1); seed <= benchPR8Seeds; seed++ {
		base := benchPR8Arm(tb, subject, false, seed)
		guided := benchPR8Arm(tb, subject, true, seed)
		// The null arm re-runs the base configuration on a disjoint
		// seed set; base-vs-alt measures pure seed noise.
		alt := benchPR8Arm(tb, subject, false, seed+1000)
		bc, gc, ac := finalCov(base), finalCov(guided), finalCov(alt)
		target := bc
		if gc < target {
			target = gc
		}
		if ac < target {
			target = ac
		}
		s.BaseDeficit += covDeficit(base, target)
		s.GuidedDeficit += covDeficit(guided, target)
		s.AltDeficit += covDeficit(alt, target)
		covB = append(covB, int64(bc))
		covG = append(covG, int64(gc))
		bb, gb := execsToBug(base), execsToBug(guided)
		toBugB = append(toBugB, bb)
		toBugG = append(toBugG, gb)
		if bb > 0 && gb > 0 {
			bugRatios = append(bugRatios, float64(bb)/float64(gb))
		}
		if gc > bc {
			s.GuidedCovWins++
		} else if gc < bc {
			s.GuidedCovLosses++
		}
	}
	if s.GuidedDeficit > 0 {
		s.CovSpeedup = s.BaseDeficit / s.GuidedDeficit
	}
	if s.AltDeficit > 0 {
		s.NullRatio = s.BaseDeficit / s.AltDeficit
	}
	if s.GuidedDeficit > 0 {
		s.CovSpeedupVsAlt = s.AltDeficit / s.GuidedDeficit
	}
	s.BaseFinalCov = medianI64(covB)
	s.GuidedFinalCov = medianI64(covG)
	s.BaseExecsToBug = medianI64(toBugB)
	s.GuidedExecsToBug = medianI64(toBugG)
	s.BugSpeedup = medianF64(bugRatios)
	return s
}

// benchPR8Subjects are the subjects whose campaigns have a nontrivial
// coverage race at this budget (the base arm still carries deficit past
// the first history sample in most seeds). The instant saturators
// (jhead, nm-new, gdk, ffmpeg, pdftotext, mujs, lame, infotocap) reach
// final coverage before the first sample on nearly every seed: both
// arms' deficits are ~0 there and any ratio would be noise over noise.
var benchPR8Subjects = []string{
	"cflow", "exiv2", "mp42aac", "tiffsplit", "flvmeta",
	"jq", "objdump", "sqlite3", "imginfo", "mp3gain",
}

// TestWriteBenchPR8 regenerates BENCH_PR8.json: guided-vs-base campaign
// pairs plus an independently-seeded base null arm per subject,
// reporting total coverage-deficit area, the guided speedup against the
// base-vs-base null band, final-coverage win counts, and first-bug
// medians. Gated because it runs 3×seeds full campaigns per subject:
//
//	WRITE_BENCH_PR8=1 go test -run TestWriteBenchPR8 -timeout 60m .
func TestWriteBenchPR8(t *testing.T) {
	if os.Getenv("WRITE_BENCH_PR8") == "" {
		t.Skip("set WRITE_BENCH_PR8=1 to regenerate BENCH_PR8.json")
	}
	out := benchPR8{
		Note:     "three arms per (subject, seed): base (default-off), guided (-analysis-guide), and alt (base on a disjoint seed set), all under edge feedback where every guidance channel engages. The coverage metric is total deficit area against the weakest arm's per-seed final coverage — the integral of execs-to-coverage over every coverage level, so a single straggler cell cannot dominate. cov_speedup (base/guided) is read against null_ratio (base/alt): the null's distance from 1.0 is the seed-noise floor of the statistic at this trial count, and only speedups outside that band are evidence in either direction. cov_speedup_vs_alt (alt/guided) cross-checks every effect against the independent base sample: a genuine speedup or slowdown clears the band on both ratios, while a lucky or unlucky base seed draw shows up on only one. Subjects are those with a nontrivial coverage race at this budget; the instant saturators carry ~0 deficit in every arm. Regenerate with: WRITE_BENCH_PR8=1 go test -run TestWriteBenchPR8 -timeout 60m .",
		Budget:   benchPR8Budget,
		Seeds:    benchPR8Seeds,
		Subjects: map[string]benchPR8Sub{},
	}
	for _, subject := range benchPR8Subjects {
		s := benchPR8Subject(t, subject)
		out.Subjects[subject] = s
		t.Logf("%-10s deficit base %12.0f guided %12.0f alt %12.0f  speedup %.3f null %.3f vsalt %.3f  final %v/%v (wins %d losses %d)  bug %.0f/%.0f (%.2fx)",
			subject, s.BaseDeficit, s.GuidedDeficit, s.AltDeficit, s.CovSpeedup, s.NullRatio, s.CovSpeedupVsAlt,
			s.BaseFinalCov, s.GuidedFinalCov, s.GuidedCovWins, s.GuidedCovLosses,
			s.BaseExecsToBug, s.GuidedExecsToBug, s.BugSpeedup)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR8.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_PR8.json")
}
