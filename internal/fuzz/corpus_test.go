package fuzz

import (
	"math/rand"
	"testing"

	"repro/internal/vm"
)

const corpusProg = `
func main(input) {
    var s = 0;
    if (len(input) < 1) { return 0; }
    if (input[0] > 128) { s = s + 1; } else { s = s + 2; }
    if (len(input) > 4) { s = s * 2; }
    if (len(input) > 1 && input[1] == 'k') { s = s + 9; }
    if (len(input) > 2 && input[2] == 0) { abort(); }
    return s;
}
`

func TestShowMap(t *testing.T) {
	p := compileT(t, corpusProg)
	cov1 := ShowMap(p, [][]byte{{200}}, "main", vm.DefaultLimits())
	cov2 := ShowMap(p, [][]byte{{200}, {1}}, "main", vm.DefaultLimits())
	if len(cov2) <= len(cov1) {
		t.Errorf("adding a branch-flipping input did not grow coverage: %d vs %d", len(cov1), len(cov2))
	}
}

// TestMinimizeCorpusPreservesEdges is the culling-criterion property:
// the minimized corpus must cover exactly the edges the full corpus
// covers (modulo crashing inputs, which are dropped).
func TestMinimizeCorpusPreservesEdges(t *testing.T) {
	p := compileT(t, corpusProg)
	rng := rand.New(rand.NewSource(7))
	var corpus [][]byte
	for i := 0; i < 200; i++ {
		in := make([]byte, 1+rng.Intn(8))
		rng.Read(in)
		corpus = append(corpus, in)
	}
	clean := StripCrashers(p, corpus, "main", vm.DefaultLimits())
	minimized := MinimizeCorpus(p, corpus, "main", vm.DefaultLimits())
	if len(minimized) == 0 {
		t.Fatal("empty minimized corpus")
	}
	if len(minimized) >= len(clean) && len(clean) > 8 {
		t.Errorf("minimization did not shrink: %d -> %d", len(clean), len(minimized))
	}
	full := ShowMap(p, clean, "main", vm.DefaultLimits())
	mini := ShowMap(p, minimized, "main", vm.DefaultLimits())
	for id := range full {
		if !mini[id] {
			t.Fatalf("edge %d lost by minimization", id)
		}
	}
	for id := range mini {
		if !full[id] {
			t.Fatalf("edge %d appeared from nowhere", id)
		}
	}
	t.Logf("corpus %d -> clean %d -> minimized %d (edges %d)", len(corpus), len(clean), len(minimized), len(full))
}

func TestStripCrashers(t *testing.T) {
	p := compileT(t, corpusProg)
	crasher := []byte{1, 2, 0}
	ok := []byte{1, 2, 3}
	out := StripCrashers(p, [][]byte{crasher, ok}, "main", vm.DefaultLimits())
	if len(out) != 1 || string(out[0]) != string(ok) {
		t.Errorf("strip = %q", out)
	}
}

func TestMergeReports(t *testing.T) {
	p := compileT(t, corpusProg)
	mk := func(seed int64) *Report {
		f, err := New(p, Options{Seed: seed, MapSize: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		f.AddSeed([]byte{1, 2, 3})
		f.Fuzz(5000)
		return f.Report()
	}
	a, b := mk(1), mk(2)
	merged := MergeReports(a, b)
	if merged.Stats.Execs != a.Stats.Execs+b.Stats.Execs {
		t.Error("execs not summed")
	}
	if len(merged.Bugs) < len(a.Bugs) || len(merged.Bugs) < len(b.Bugs) {
		t.Error("bug union lost entries")
	}
	if merged.QueueLen != b.QueueLen {
		t.Error("queue not taken from last report")
	}
	if len(MergeReports().Bugs) != 0 {
		t.Error("empty merge")
	}
}

func TestHistorySampling(t *testing.T) {
	p := compileT(t, corpusProg)
	f, err := New(p, Options{Seed: 3, MapSize: 1 << 10, HistorySamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte{9, 9, 9})
	f.Fuzz(10000)
	rep := f.Report()
	if len(rep.History) < 5 {
		t.Fatalf("history samples = %d", len(rep.History))
	}
	last := rep.History[len(rep.History)-1]
	if last.Execs < 10000 {
		t.Errorf("last sample at %d execs", last.Execs)
	}
	for i := 1; i < len(rep.History); i++ {
		if rep.History[i].Execs < rep.History[i-1].Execs {
			t.Error("history not monotone")
		}
	}
}

func TestFavoredCorpusCoversQueue(t *testing.T) {
	p := compileT(t, corpusProg)
	f, err := New(p, Options{Seed: 4, MapSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	f.AddSeed([]byte{1, 2, 3})
	f.Fuzz(20000)
	fav := f.FavoredInputs()
	all := f.QueueInputs()
	if len(fav) == 0 || len(fav) > len(all) {
		t.Fatalf("favored %d of %d", len(fav), len(all))
	}
	// The favored corpus preserves the queue's edge coverage (the
	// culling criterion).
	full := ShowMap(p, all, "main", vm.DefaultLimits())
	mini := ShowMap(p, fav, "main", vm.DefaultLimits())
	for id := range full {
		if !mini[id] {
			t.Errorf("favored corpus lost edge %d", id)
		}
	}
}

// TestMinimizeExactEquivalence backs the paper's §IV claim: the
// favored-corpus approximation and the afl-cmin-style exact greedy
// cover preserve the same edge set, and the approximation is not
// drastically larger.
func TestMinimizeExactEquivalence(t *testing.T) {
	p := compileT(t, corpusProg)
	rng := rand.New(rand.NewSource(13))
	var corpus [][]byte
	for i := 0; i < 300; i++ {
		in := make([]byte, 1+rng.Intn(8))
		rng.Read(in)
		corpus = append(corpus, in)
	}
	approx := MinimizeCorpus(p, corpus, "main", vm.DefaultLimits())
	exact := MinimizeCorpusExact(p, corpus, "main", vm.DefaultLimits())
	covA := ShowMap(p, approx, "main", vm.DefaultLimits())
	covE := ShowMap(p, exact, "main", vm.DefaultLimits())
	if len(covA) != len(covE) {
		t.Fatalf("coverage differs: approx %d edges, exact %d edges", len(covA), len(covE))
	}
	for id := range covE {
		if !covA[id] {
			t.Fatalf("approximation lost edge %d", id)
		}
	}
	if len(approx) > 3*len(exact)+3 {
		t.Errorf("approximation much larger than exact: %d vs %d", len(approx), len(exact))
	}
	t.Logf("corpus %d: approx %d, exact %d inputs (equal %d-edge coverage)",
		len(corpus), len(approx), len(exact), len(covE))
}
