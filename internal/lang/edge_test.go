package lang_test

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func TestCommentsSkipped(t *testing.T) {
	toks, errs := lang.LexAll(`
// line comment
/* block
   comment */ func /* inline */ main // trailing
`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != lang.FUNC || toks[1].Kind != lang.IDENT || toks[2].Kind != lang.EOF {
		t.Errorf("tokens: %v", toks)
	}
}

func TestHexAndDecimalBoundaries(t *testing.T) {
	toks, errs := lang.LexAll("0x7FFFFFFFFFFFFFFF 9223372036854775807")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Val != 9223372036854775807 || toks[1].Val != 9223372036854775807 {
		t.Errorf("vals: %d %d", toks[0].Val, toks[1].Val)
	}
	// Out-of-range literals are diagnosed.
	if _, errs := lang.LexAll("99999999999999999999"); len(errs) == 0 {
		t.Error("overflow literal accepted")
	}
}

func TestOperatorMaximalMunch(t *testing.T) {
	toks, _ := lang.LexAll("<<= >>= <= >= == != && || < > ! = & |")
	want := []lang.Kind{
		lang.SHL, lang.ASSIGN, lang.SHR, lang.ASSIGN, lang.LE, lang.GE,
		lang.EQ, lang.NE, lang.LAND, lang.LOR, lang.LT, lang.GT,
		lang.NOT, lang.ASSIGN, lang.AMP, lang.PIPE, lang.EOF,
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v (stream %v)", i, toks[i].Kind, k, toks)
		}
	}
}

func TestDeeplyNestedExpressionsParse(t *testing.T) {
	// The parser is recursive; make sure realistic nesting depth works.
	depth := 200
	src := "func main(input) { return " + strings.Repeat("(", depth) + "1" +
		strings.Repeat(")", depth) + "; }"
	if _, err := lang.Parse(src); err != nil {
		t.Fatalf("nested parens: %v", err)
	}
}

func TestEmptyFunctionAndParams(t *testing.T) {
	prog, err := lang.Parse("func f() { } func main(input) { f(); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Func("f").Params) != 0 {
		t.Error("empty parameter list misparsed")
	}
	if len(prog.Func("f").Body.Stmts) != 0 {
		t.Error("empty body misparsed")
	}
}

func TestIndexExpressionStatements(t *testing.T) {
	// A bare a[i]; is legal (the load may trap, which is the point).
	prog, err := lang.Parse(`func main(input) { input[0]; input[1][2]; return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(prog.Func("main").Body.Stmts); n != 3 {
		t.Errorf("stmts = %d", n)
	}
}

func TestStringEscapes(t *testing.T) {
	toks, errs := lang.LexAll(`"\t\r\0\\"`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Text != "\t\r\x00\\" {
		t.Errorf("decoded: %q", toks[0].Text)
	}
}
