package subjects

import (
	"testing"

	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/vm"
)

// TestAllSubjectsCompile compiles every registered subject.
func TestAllSubjectsCompile(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("no subjects registered")
	}
	for _, s := range all {
		if _, err := s.Program(); err != nil {
			t.Errorf("%v", err)
		}
	}
	t.Logf("%d subjects", len(all))
}

// TestSeedsDoNotCrash verifies the seed corpora run clean: UNIFUZZ
// seeds are valid inputs, and crashing seeds would contaminate every
// campaign.
func TestSeedsDoNotCrash(t *testing.T) {
	for _, s := range All() {
		prog, err := s.Program()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Seeds) == 0 {
			t.Errorf("%s: no seeds", s.Name)
			continue
		}
		for i, seed := range s.Seeds {
			res := vm.Run(prog, "main", seed, vm.NullTracer{}, vm.DefaultLimits())
			if res.Status != vm.StatusOK {
				msg := ""
				if res.Crash != nil {
					msg = res.Crash.String()
				}
				t.Errorf("%s: seed %d: status %v %s", s.Name, i, res.Status, msg)
			}
		}
	}
}

// TestBugWitnesses executes every planted bug's witness and asserts the
// expected fault kind and function: the ground-truth inventory check.
func TestBugWitnesses(t *testing.T) {
	for _, s := range All() {
		prog, err := s.Program()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Bugs) == 0 {
			t.Errorf("%s: no bug inventory", s.Name)
		}
		seen := make(map[string]bool)
		for _, b := range s.Bugs {
			if b.Witness == nil {
				t.Errorf("%s/%s: no witness", s.Name, b.ID)
				continue
			}
			res := vm.Run(prog, "main", b.Witness, vm.NullTracer{}, vm.DefaultLimits())
			if res.Status != vm.StatusCrash {
				t.Errorf("%s/%s: witness did not crash (status %v, ret %d)", s.Name, b.ID, res.Status, res.Ret)
				continue
			}
			if res.Crash.Kind != b.WantKind {
				t.Errorf("%s/%s: crash kind %v, want %v (%s)", s.Name, b.ID, res.Crash.Kind, b.WantKind, res.Crash)
				continue
			}
			if res.Crash.Func != b.WantFunc {
				t.Errorf("%s/%s: crash in %q, want %q (%s)", s.Name, b.ID, res.Crash.Func, b.WantFunc, res.Crash)
				continue
			}
			key := res.Crash.BugKey()
			if seen[key] {
				t.Errorf("%s/%s: bug key %s collides with another planted bug", s.Name, b.ID, key)
			}
			seen[key] = true
		}
	}
}

// TestWitnessCrashSitesDistinct verifies that distinct planted bugs
// yield distinct ground-truth keys AND distinct stack hashes, so both
// deduplication levels can tell them apart.
func TestWitnessCrashSitesDistinct(t *testing.T) {
	for _, s := range All() {
		prog, err := s.Program()
		if err != nil {
			t.Fatal(err)
		}
		hashes := make(map[uint64]string)
		for _, b := range s.Bugs {
			if b.Witness == nil {
				continue
			}
			res := vm.Run(prog, "main", b.Witness, vm.NullTracer{}, vm.DefaultLimits())
			if res.Status != vm.StatusCrash {
				continue
			}
			h := res.Crash.StackHash(5)
			if prev, dup := hashes[h]; dup {
				t.Errorf("%s: %s and %s share a stack hash", s.Name, prev, b.ID)
			}
			hashes[h] = b.ID
		}
	}
}

// TestSubjectsFuzzable smoke-checks that a short path-feedback campaign
// finds at least one bug in each subject with shallow bugs. Subjects
// whose bugs are all deep or unreachable are exempt: nm-new (checksum
// gate, by design), ffmpeg (header-gated decoder state), infotocap and
// sqlite3 (section/grammar depth), and jq (its single bug is ~96 levels
// of parser recursion, matching its real-world counterpart's depth bug;
// campaigns at evaluation scale do find it).
func TestSubjectsFuzzable(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	easy := []string{"cflow", "flvmeta", "gdk", "imginfo", "jhead",
		"lame", "mp3gain", "mp42aac", "mujs", "objdump", "pdftotext", "tiffsplit"}
	for _, name := range easy {
		sub := Get(name)
		prog, err := sub.Program()
		if err != nil {
			t.Fatal(err)
		}
		f, err := fuzz.New(prog, fuzz.Options{
			Feedback: instrument.FeedbackPath,
			Seed:     1,
			MapSize:  1 << 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sub.Seeds {
			f.AddSeed(s)
		}
		f.Fuzz(40000)
		rep := f.Report()
		if len(rep.Bugs) == 0 {
			t.Errorf("%s: no bugs found in %d execs (queue %d)", name, rep.Stats.Execs, rep.QueueLen)
		} else {
			t.Logf("%-10s %d bugs, queue %d", name, len(rep.Bugs), rep.QueueLen)
		}
	}
}

// TestPathDependentBugsDocumented: at least a third of the suite's
// subjects plant a path-dependent bug, keeping the evaluation's
// headline phenomenon well represented.
func TestPathDependentBugsDocumented(t *testing.T) {
	withPD := 0
	total := 0
	for _, s := range All() {
		total++
		for _, b := range s.Bugs {
			if b.PathDependent {
				withPD++
				break
			}
		}
	}
	if withPD*3 < total {
		t.Errorf("only %d of %d subjects plant a path-dependent bug", withPD, total)
	}
}
