package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
)

func metricsServer(t *testing.T) (*Recorder, *httptest.Server) {
	t.Helper()
	clk := newFakeClock()
	r := New(Config{Now: clk.now, Info: goldenInfo()})
	clk.advance(2 * time.Second)
	r.Publish(goldenSnapshot().Counters)
	if _, ok := r.Sample(); !ok {
		t.Fatal("sample skipped")
	}
	r.Span(StageHavoc, 5*time.Microsecond)
	r.Span(StageCheckpoint, 3*time.Millisecond)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(srv.Close)
	return r, srv
}

func fetch(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	_, srv := metricsServer(t)
	code, body, ctype := fetch(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("content type %q, want Prometheus text format", ctype)
	}
	for _, want := range []string{
		"pafuzz_execs_total 12345",
		"pafuzz_queue_depth 40",
		"pafuzz_coverage_count 25",
		"pafuzz_stage_duration_seconds_bucket",
		`stage="havoc"`,
		`stage="checkpoint"`,
		"pafuzz_stage_duration_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Histogram buckets must be cumulative and end with +Inf.
	if !strings.Contains(body, `le="+Inf"`) {
		t.Error("/metrics histogram has no +Inf bucket")
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	_, srv := metricsServer(t)
	code, body, ctype := fetch(t, srv.URL+"/snapshot.json")
	if code != http.StatusOK {
		t.Fatalf("/snapshot.json status %d", code)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("content type %q, want JSON", ctype)
	}
	var snap JSONSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot does not decode: %v", err)
	}
	if snap.Latest == nil || snap.Latest.Execs != 12345 {
		t.Errorf("snapshot Latest = %+v, want Execs 12345", snap.Latest)
	}
	if snap.Info.Banner != "flvmeta/path" {
		t.Errorf("snapshot Info.Banner = %q", snap.Info.Banner)
	}
	if len(snap.Series) != 1 {
		t.Errorf("snapshot Series has %d points, want 1", len(snap.Series))
	}
	if len(snap.Stages) != 2 {
		t.Errorf("snapshot Stages has %d entries, want 2", len(snap.Stages))
	}
}

func TestDashboardAndNotFound(t *testing.T) {
	_, srv := metricsServer(t)
	code, body, ctype := fetch(t, srv.URL+"/")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/html") {
		t.Fatalf("dashboard status %d ctype %q", code, ctype)
	}
	if !strings.Contains(body, "snapshot.json") {
		t.Error("dashboard does not poll snapshot.json")
	}
	if code, _, _ := fetch(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

// TestMetricsBeforeFirstPublish ensures the endpoints do not panic on a
// recorder that has produced no snapshot yet.
func TestMetricsBeforeFirstPublish(t *testing.T) {
	r := New(Config{})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/snapshot.json", "/"} {
		if code, _, _ := fetch(t, srv.URL+path); code != http.StatusOK {
			t.Errorf("%s before publish: status %d", path, code)
		}
	}
}

func TestCoverageEndpoint(t *testing.T) {
	r, srv := metricsServer(t)

	// Without a registered page the endpoint 404s rather than guessing.
	if code, _, _ := fetch(t, srv.URL+"/coverage"); code != http.StatusNotFound {
		t.Fatalf("/coverage with no page: status %d, want 404", code)
	}

	r.SetCoveragePage(func(w io.Writer, events []journal.Event) error {
		fmt.Fprintf(w, "<!doctype html><html><body>coverage: %d events</body></html>", len(events))
		return nil
	})
	// A page but no journal dir still 404s: there is nothing to render.
	if code, _, _ := fetch(t, srv.URL+"/coverage"); code != http.StatusNotFound {
		t.Fatalf("/coverage with no journal: status %d, want 404", code)
	}

	dir := t.TempDir()
	jw, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jw.Emit(journal.Event{Kind: journal.KindNovelty, Stage: "havoc", Cells: []uint32{1, 2}})
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	r.SetJournalDir(dir)
	code, body, ctype := fetch(t, srv.URL+"/coverage")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/html") {
		t.Fatalf("/coverage status %d ctype %q", code, ctype)
	}
	if !strings.Contains(body, "coverage: 1 events") {
		t.Errorf("/coverage body %q", body)
	}

	// The dashboard links to the page.
	if _, dash, _ := fetch(t, srv.URL+"/"); !strings.Contains(dash, `href="coverage"`) {
		t.Error("dashboard has no coverage link")
	}
}

func TestCellResolverRoundTrip(t *testing.T) {
	r := New(Config{})
	if r.resolver() != nil {
		t.Fatal("fresh recorder has a resolver")
	}
	r.SetCellResolver(func(c uint32) string { return "x" })
	if got := r.resolver()(7); got != "x" {
		t.Fatalf("resolver() = %q", got)
	}
}
