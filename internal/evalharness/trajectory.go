package evalharness

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/campaign"
	"repro/internal/stats"
	"repro/internal/strategy"
)

// curvesDir is the StateDir subdirectory holding per-run trajectory
// curves: one CSV per campaign, sampled from the fuzzer's history (the
// Figure 2 machinery), so coverage-over-time plots can be regenerated
// without re-running anything.
const curvesDir = "curves"

func curveFileName(subject string, f strategy.Name, run int) string {
	return fmt.Sprintf("%s_%s_%03d.csv", campaign.SanitizeName(subject), campaign.SanitizeName(string(f)), run)
}

// CurveCSV renders one run's coverage-over-time curve as CSV.
func CurveCSV(rr *RunResult) []byte {
	var b strings.Builder
	b.WriteString("execs,queue_len,coverage,crashes,unique_bugs,favored,paths_total\n")
	if rr.Report != nil {
		for _, h := range rr.Report.History {
			fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d\n",
				h.Execs, h.QueueLen, h.CovCount, h.Crashes, h.UniqBugs, h.Favored, h.PathCount)
		}
	}
	return []byte(b.String())
}

// saveCurve persists one run's trajectory curve under StateDir/curves.
func saveCurve(cfg Config, rr *RunResult) error {
	dir := filepath.Join(cfg.StateDir, curvesDir)
	if err := cfg.FS.MkdirAll(dir); err != nil {
		return err
	}
	path := filepath.Join(dir, curveFileName(rr.Subject, rr.Fuzzer, rr.Run))
	return campaign.WriteFileAtomic(cfg.FS, path, CurveCSV(rr))
}

// trajectoryFractions are the budget checkpoints the trajectory table
// reports, as fractions of the per-run execution budget.
var trajectoryFractions = []float64{0.10, 0.25, 0.50, 0.75, 1.00}

// coverageAt returns the run's coverage-map count at the last history
// sample taken at or before the given execution count (0 if the history
// has no sample that early).
func coverageAt(rr *RunResult, execs int64) int {
	cov := 0
	if rr == nil || rr.Report == nil {
		return 0
	}
	for _, h := range rr.Report.History {
		if h.Execs > execs {
			break
		}
		cov = h.CovCount
	}
	return cov
}

// Trajectory prints the paper-style coverage-over-time table: for every
// fuzzer, the total (summed over subjects) median-across-runs coverage
// at fixed fractions of the execution budget. It is the tabular form of
// the paper's coverage-growth figures: a fuzzer that finds its coverage
// early dominates the left columns even when totals converge.
func (s *SuiteResult) Trajectory(w io.Writer) {
	fmt.Fprintln(w, "TRAJECTORY — median coverage (map indices) at budget fractions, summed over subjects")
	tw := newTab(w)
	fmt.Fprint(tw, "Fuzzer\t")
	for _, fr := range trajectoryFractions {
		fmt.Fprintf(tw, "%d%%\t", int(fr*100))
	}
	fmt.Fprintln(tw, "final bugs\t")
	for _, f := range s.Cfg.Fuzzers {
		fmt.Fprintf(tw, "%s\t", f)
		for _, fr := range trajectoryFractions {
			at := int64(fr * float64(s.Cfg.Budget))
			total := 0
			for _, sub := range s.Cfg.Subjects {
				var covs []int
				for _, rr := range s.Runs(sub, f) {
					if rr != nil {
						covs = append(covs, coverageAt(rr, at))
					}
				}
				total += stats.MedianInt(covs)
			}
			fmt.Fprintf(tw, "%d\t", total)
		}
		fmt.Fprintf(tw, "%d\t\n", s.TotalBugs(f).Len())
	}
	tw.Flush()
}
