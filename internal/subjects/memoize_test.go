package subjects_test

import (
	"sync"
	"testing"

	"repro/internal/cfg"
	"repro/internal/subjects"
)

// TestProgramMemoized asserts each subject is parsed and lowered once
// per process: every Program() call — including concurrent ones —
// returns the identical *cfg.Program pointer. The bytecode compile
// cache keys on this pointer, so stability here is what makes "compile
// once, fuzz forever" hold end to end.
func TestProgramMemoized(t *testing.T) {
	for _, sub := range subjects.All() {
		first, err := sub.Program()
		if err != nil {
			t.Fatalf("%s: %v", sub.Name, err)
		}
		var wg sync.WaitGroup
		ptrs := make([]*cfg.Program, 8)
		for i := range ptrs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p, _ := sub.Program()
				ptrs[i] = p
			}(i)
		}
		wg.Wait()
		for i, p := range ptrs {
			if p != first {
				t.Fatalf("%s: Program() call %d returned a different pointer", sub.Name, i)
			}
		}
	}
}
