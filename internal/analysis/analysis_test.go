package analysis

import (
	"math"
	"testing"

	"repro/internal/cfg"
)

// diamond builds the classic shape by compiling a source whose CFG is
// entry → (then | else) → join.
func diamond(t *testing.T) *cfg.Func {
	t.Helper()
	prog, err := cfg.Compile(`func main(input) {
		var x = 0;
		if (len(input) > 0) { x = 1; } else { x = 2; }
		return x;
	}`)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Func("main")
}

func loopFunc(t *testing.T) *cfg.Func {
	t.Helper()
	prog, err := cfg.Compile(`func main(input) {
		var s = 0;
		for (var i = 0; i < 10; i = i + 1) { s = s + i; }
		return s;
	}`)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Func("main")
}

func TestReversePostorderCoversReachable(t *testing.T) {
	for _, f := range []*cfg.Func{diamond(t), loopFunc(t)} {
		rpo := ReversePostorder(f)
		if len(rpo) != len(f.Blocks) {
			t.Fatalf("%s: rpo has %d blocks, func has %d", f.Name, len(rpo), len(f.Blocks))
		}
		if rpo[0] != 0 {
			t.Fatalf("%s: rpo does not start at entry: %v", f.Name, rpo)
		}
		seen := map[int]bool{}
		for _, b := range rpo {
			if seen[b] {
				t.Fatalf("%s: duplicate block b%d in rpo", f.Name, b)
			}
			seen[b] = true
		}
	}
}

func TestDominators(t *testing.T) {
	f := diamond(t)
	idom := Dominators(f)
	if idom[0] != 0 {
		t.Fatalf("entry idom = %d, want itself", idom[0])
	}
	// The entry dominates every block; no non-entry block dominates the
	// block its sibling branch leads to.
	for b := range f.Blocks {
		if !Dominates(idom, 0, b) {
			t.Fatalf("entry does not dominate b%d", b)
		}
	}
	// Branch arms: two blocks with the same idom (the branching block),
	// neither dominating the other.
	byIdom := map[int][]int{}
	for b := 1; b < len(f.Blocks); b++ {
		byIdom[idom[b]] = append(byIdom[idom[b]], b)
	}
	foundArms := false
	for _, arms := range byIdom {
		if len(arms) >= 2 {
			foundArms = true
			if Dominates(idom, arms[0], arms[1]) || Dominates(idom, arms[1], arms[0]) {
				t.Fatalf("sibling branch arms %v dominate each other", arms)
			}
		}
	}
	if !foundArms {
		t.Fatalf("no sibling arms found in diamond; idom = %v", idom)
	}
}

func TestPostDominators(t *testing.T) {
	f := diamond(t)
	ipdom := PostDominators(f)
	exit := len(f.Blocks)
	if ipdom[exit] != exit {
		t.Fatalf("virtual exit ipdom = %d, want itself", ipdom[exit])
	}
	for b := range f.Blocks {
		if ipdom[b] < 0 {
			t.Fatalf("b%d cannot reach exit in a function with returns", b)
		}
	}
	// Infinite loop: the loop blocks cannot reach the exit.
	prog, err := cfg.Compile(`func main(input) { while (len(input) + 1) { } return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	// All blocks still get a well-defined answer (possibly -1).
	_ = PostDominators(prog.Func("main"))
}

func TestLivenessParamsAndLoop(t *testing.T) {
	f := loopFunc(t)
	liveIn, liveOut := Liveness(f)
	// The loop counter and accumulator must be live around the back
	// edge: some block has them live-out.
	anyLive := 0
	for b := range f.Blocks {
		for s := 0; s < f.FrameSize; s++ {
			if liveOut[b].Has(s) || liveIn[b].Has(s) {
				anyLive++
			}
		}
	}
	if anyLive == 0 {
		t.Fatal("loop function has no live slots at any boundary")
	}
	// Nothing is live out of a return block.
	for b := range f.Blocks {
		if f.Blocks[b].Term.Kind != cfg.TermRet {
			continue
		}
		for s := 0; s < f.FrameSize; s++ {
			if liveOut[b].Has(s) {
				t.Fatalf("slot s%d live out of return block b%d", s, b)
			}
		}
	}
}

func TestReachingDefsParams(t *testing.T) {
	f := diamond(t)
	sites, in, _ := ReachingDefs(f)
	if len(sites) == 0 || sites[0].Index != -1 {
		t.Fatalf("first site should be the parameter entry def, got %+v", sites)
	}
	if !in[0].Has(0) {
		t.Fatal("parameter def does not reach the entry block")
	}
	// The two arm definitions of x both reach the join block.
	xDefs := []int{}
	for i, s := range sites {
		if s.Index >= 0 && s.Block != 0 && f.Blocks[s.Block].Instrs[s.Index].Op == cfg.OpConst {
			xDefs = append(xDefs, i)
		}
	}
	join := -1
	preds := Preds(f)
	for b := range f.Blocks {
		if len(preds[b]) >= 2 && f.Blocks[b].Term.Kind == cfg.TermRet {
			join = b
		}
	}
	if join < 0 {
		t.Fatalf("no join block found")
	}
	reaching := 0
	for _, d := range xDefs {
		if in[join].Has(d) {
			reaching++
		}
	}
	if reaching < 2 {
		t.Fatalf("want both arm defs reaching the join, got %d (sites %v)", reaching, xDefs)
	}
}

func TestIntervalArithmetic(t *testing.T) {
	if got := addI(Interval{1, 2}, Interval{10, 20}); got != (Interval{11, 22}) {
		t.Fatalf("addI = %v", got)
	}
	if got := addI(Interval{math.MaxInt64 - 1, math.MaxInt64}, Interval{1, 1}); got != topI {
		t.Fatalf("overflowing addI = %v, want top", got)
	}
	if got := negI(Interval{math.MinInt64, 0}); got != topI {
		t.Fatalf("negI of MinInt64 = %v, want top", got)
	}
	if got := mulI(Interval{-3, 4}, Interval{5, 6}); got != (Interval{-18, 24}) {
		t.Fatalf("mulI = %v", got)
	}
	if got := hull(bottomI, Interval{3, 5}); got != (Interval{3, 5}) {
		t.Fatalf("hull with bottom = %v", got)
	}
}

func TestIntervalsPruneConstBranch(t *testing.T) {
	prog, err := cfg.Compile(`func main(input) {
		var n = 10;
		var m = n - 10;
		if (m) { out(1); }
		return m;
	}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	ii := IntervalsOf(f)
	unreached := 0
	for b := range f.Blocks {
		if !ii.Reached[b] {
			unreached++
		}
	}
	if unreached == 0 {
		t.Fatal("interval analysis did not prune the always-false branch")
	}
	feasible := 0
	for _, ok := range ii.EdgeFeasible {
		if ok {
			feasible++
		}
	}
	if feasible == len(f.Edges) {
		t.Fatal("no edge was marked infeasible")
	}
}

func TestReachCountsSites(t *testing.T) {
	prog, err := cfg.Compile(`
		func helper(a) { return a[0]; }
		func safe(a) { return a + 1; }
		func main(input) {
			if (len(input) > 0) { return helper(input); }
			return safe(3);
		}`)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReach(prog)
	if r.NumSites() == 0 {
		t.Fatal("no crash sites found (helper loads, main calls len)")
	}
	mainIdx := prog.ByName["main"]
	helperIdx := prog.ByName["helper"]
	safeIdx := prog.ByName["safe"]
	if r.Func(helperIdx) == 0 {
		t.Fatal("helper contains a load but reaches 0 sites")
	}
	if r.Func(safeIdx) != 0 {
		t.Fatalf("safe cannot fault but reaches %d sites", r.Func(safeIdx))
	}
	if r.Func(mainIdx) < r.Func(helperIdx) {
		t.Fatalf("main (calls helper) reaches %d sites, helper reaches %d",
			r.Func(mainIdx), r.Func(helperIdx))
	}
}
