package coverage

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(256)
	if b.Len() != 256 {
		t.Fatalf("Len = %d, want 256", b.Len())
	}
	if b.Count() != 0 || b.Has(0) || b.Has(255) {
		t.Fatal("fresh bitset not empty")
	}
	b.Set(3)
	b.Set(255)
	// Indices mask exactly like Map.Add: 256+3 lands on cell 3.
	b.Set(256 + 3)
	if !b.Has(3) || !b.Has(255) || !b.Has(259) {
		t.Fatal("set cells not visible")
	}
	if b.Has(4) {
		t.Fatal("unset cell reported set")
	}
	if b.Count() != 2 {
		t.Fatalf("Count = %d, want 2", b.Count())
	}
	b.Clear()
	if b.Count() != 0 || b.Has(3) {
		t.Fatal("Clear left bits behind")
	}
}

func TestBitsetRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -8, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBitset(%d) did not panic", n)
				}
			}()
			NewBitset(n)
		}()
	}
}

// TestFullyConsumedInto cross-checks the word-at-a-time scan against a
// naive per-cell reference over randomized virgin states, including the
// three cell classes the scan distinguishes: all-virgin (0xff), partly
// consumed, and fully consumed (0).
func TestFullyConsumedInto(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		size := 1 << (3 + rng.Intn(8)) // 8 .. 1024
		v := NewVirgin(size)
		var cells []VirginCell
		for i := 0; i < size; i++ {
			switch rng.Intn(4) {
			case 0: // fully consumed
				cells = append(cells, VirginCell{Index: uint32(i), Bits: 0})
			case 1: // partly consumed
				cells = append(cells, VirginCell{Index: uint32(i), Bits: uint8(1 + rng.Intn(254))})
			}
		}
		if err := v.SetCells(cells); err != nil {
			t.Fatal(err)
		}
		bs := NewBitset(size)
		got := v.FullyConsumedInto(bs)
		want := 0
		for i := 0; i < size; i++ {
			full := false
			for _, c := range cells {
				if int(c.Index) == i && c.Bits == 0 {
					full = true
				}
			}
			if full {
				want++
			}
			if bs.Has(uint32(i)) != full {
				t.Fatalf("size %d cell %d: scan says %v, reference says %v", size, i, bs.Has(uint32(i)), full)
			}
		}
		if got != want || bs.Count() != want {
			t.Fatalf("size %d: returned %d, Count %d, want %d", size, got, bs.Count(), want)
		}
	}
}

// TestFullyConsumedIntoRepeated pins that the scan clears stale bits: a
// bitset reused across replans must reflect only the current virgin
// state (monotone growth in practice, but the contract is a full
// recompute).
func TestFullyConsumedIntoRepeated(t *testing.T) {
	v := NewVirgin(64)
	bs := NewBitset(64)
	if err := v.SetCells([]VirginCell{{Index: 5, Bits: 0}}); err != nil {
		t.Fatal(err)
	}
	if n := v.FullyConsumedInto(bs); n != 1 || !bs.Has(5) {
		t.Fatalf("first scan: n=%d has(5)=%v", n, bs.Has(5))
	}
	if err := v.SetCells([]VirginCell{{Index: 9, Bits: 0}}); err != nil {
		t.Fatal(err)
	}
	if n := v.FullyConsumedInto(bs); n != 1 || bs.Has(5) || !bs.Has(9) {
		t.Fatalf("second scan kept stale state: n=%d has(5)=%v has(9)=%v", n, bs.Has(5), bs.Has(9))
	}
}

func TestFullyConsumedIntoSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	NewVirgin(64).FullyConsumedInto(NewBitset(128))
}
