package core_test

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/vm"
)

// Example demonstrates the facade end to end: compile a MiniC program
// with a path-dependent bug, fuzz it with the path-aware feedback, and
// print what was found. (Budgets are execution counts; the campaign is
// deterministic, which is what makes this an Example.)
func Example() {
	target, err := core.Compile(`
func main(input) {
    if (len(input) < 4) { return 0; }
    var mode = 0;
    if (input[0] == 'M' && input[1] == '1') { mode = 9; }
    if (input[2] == 'G' && input[3] == 'O') {
        var t = alloc(4);
        t[mode] = 1; // out of bounds only via the mode-setting path
        out(t[mode]);
    }
    return 0;
}`)
	if err != nil {
		panic(err)
	}
	out, err := target.Fuzz(core.Campaign{
		Fuzzer: "path",
		Budget: 60000,
		Seeds:  [][]byte{[]byte("abcd")},
		Seed:   5,
	})
	if err != nil {
		panic(err)
	}
	keys := out.Report.BugKeys()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k)
	}
	// Output:
	// main:8:heap-out-of-bounds-write
}

// ExampleTarget_PathProfiler shows the standalone profiler: exact
// per-path execution counts with regenerated block sequences.
func ExampleTarget_PathProfiler() {
	target, err := core.Compile(`
func main(input) {
    var n = 0;
    if (len(input) > 2) { n = 1; } else { n = 2; }
    return n;
}`)
	if err != nil {
		panic(err)
	}
	prof, err := target.PathProfiler()
	if err != nil {
		panic(err)
	}
	prof.Profile("main", []byte("long input"), vm.DefaultLimits())
	prof.Profile("main", []byte("x"), vm.DefaultLimits())
	prof.Profile("main", []byte("y"), vm.DefaultLimits())
	for _, pc := range prof.Counts() {
		fmt.Printf("path %d ran %d time(s)\n", pc.PathID, pc.Count)
	}
	// Output:
	// path 1 ran 2 time(s)
	// path 0 ran 1 time(s)
}
