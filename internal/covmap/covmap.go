// Package covmap is the coverage-cartography subsystem: a deterministic
// reverse index from every coverage map cell to its program meaning,
// per subject × feedback. Edge and block cells invert exactly through
// the instrument package's global ID bases; path cells invert by
// enumerating every Ball-Larus path ID through the tracer's mixing
// formula and decode to exact basic-block sequences via
// balllarus.Encoding.Regenerate; hashed cells (n-gram windows, pathafl
// segment hashes, hash-mode path functions) are reported honestly as
// hash buckets, never given an invented source location.
//
// The index and every artifact built on it (annotated source report,
// frontier report, coverage-delta attribution) are display-only: they
// are constructed outside the fuzz loop from programs, checkpoints,
// and journals, and can never perturb a campaign.
package covmap

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/balllarus"
	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/instrument"
)

// Kind classifies what a map cell means.
type Kind int

// Cell meaning kinds. The first four are exact (invertible) meanings;
// the rest are explicitly-marked hash buckets.
const (
	// KindEdge: a specific CFG edge (edge and pathafl feedbacks).
	KindEdge Kind = iota
	// KindEntry: a function's entry block (block feedback, EnterFunc).
	KindEntry
	// KindBlock: a specific basic block (block feedback, edge target).
	KindBlock
	// KindPath: a specific Ball-Larus acyclic path, decodable to its
	// exact block sequence.
	KindPath
	// KindPathHash: a hash-mode path function's rolling-hash bucket
	// (path count exceeded balllarus.MaxPaths; IDs are not numberable).
	KindPathHash
	// KindPathOverflow: the owning function's path space is exactly
	// numbered but too large to enumerate into the index, so the cell
	// cannot be inverted.
	KindPathOverflow
	// KindNGram: an n-gram window hash bucket.
	KindNGram
	// KindSegHash: a pathafl pruned-segment hash bucket (16-bit).
	KindSegHash
)

// Exact reports whether the kind carries an invertible program meaning
// (as opposed to an explicitly-marked hash bucket).
func (k Kind) Exact() bool { return k <= KindPath }

func (k Kind) String() string {
	switch k {
	case KindEdge:
		return "edge"
	case KindEntry:
		return "entry"
	case KindBlock:
		return "block"
	case KindPath:
		return "path"
	case KindPathHash:
		return "path-hash-bucket"
	case KindPathOverflow:
		return "path-overflow-bucket"
	case KindNGram:
		return "ngram-bucket"
	case KindSegHash:
		return "segment-hash-bucket"
	}
	return "?"
}

// Meaning is one program meaning of a map cell. A cell can carry
// several meanings when index masking or hash mixing collide; the
// report layer treats multi-meaning cells as ambiguous, never picking
// a winner silently.
type Meaning struct {
	Kind Kind
	// Fn is the owning function index (-1 for program-wide buckets).
	Fn int
	// Edge indexes Fn's Edges (KindEdge only).
	Edge int
	// Block is the block index (KindEntry/KindBlock only).
	Block int
	// PathID is the Ball-Larus path identifier (KindPath only).
	PathID uint64
}

// EnumCapPerFn bounds how many path IDs of one function the index
// enumerates; functions beyond it keep exact runtime feedback but
// resolve as KindPathOverflow buckets.
const EnumCapPerFn = uint64(1) << 16

// EnumCapTotal bounds program-wide path enumeration.
const EnumCapTotal = uint64(1) << 20

// Index is the reverse coverage map of one ⟨program, feedback,
// instrumentation config, map size⟩ tuple. Construction is
// deterministic: cells and meanings come out in program order.
type Index struct {
	Prog     *cfg.Program
	Feedback instrument.Feedback
	Config   instrument.Config
	MapSize  int

	cells [][]Meaning

	// Path-feedback bookkeeping (nil/empty otherwise).
	encs     []*balllarus.Encoding // per function; nil when not encoded
	numPaths []uint64              // per function; 0 in hash mode
	// HashModeFns lists functions that fell back to hashed path IDs;
	// OverflowFns lists exactly-numbered functions whose path space
	// exceeded the enumeration caps.
	HashModeFns []int
	OverflowFns []int
	edgeBases   []uint32
	blockBases  []uint32
	afTracked   []bool
	lines       [][]lineRange // [fn][block] source line span
	edgeByPair  []map[int64]int
	// backOut[fn][block] lists the indices of block's outgoing back
	// edges (the CFG's classification, the same one Ball-Larus
	// numbering uses). Decoded acyclic paths stop AT back edges, so the
	// report layer needs these to credit loop latches as covered.
	backOut [][][]int
}

type lineRange struct{ lo, hi int }

// New builds the reverse index. mapSize must be a power of two (the
// campaign's coverage map size).
func New(prog *cfg.Program, fb instrument.Feedback, c instrument.Config, mapSize int) (*Index, error) {
	if mapSize <= 0 || mapSize&(mapSize-1) != 0 {
		return nil, fmt.Errorf("covmap: map size %d is not a positive power of two", mapSize)
	}
	ix := &Index{
		Prog:       prog,
		Feedback:   fb,
		Config:     c,
		MapSize:    mapSize,
		cells:      make([][]Meaning, mapSize),
		edgeBases:  instrument.EdgeBases(prog),
		blockBases: instrument.BlockBases(prog),
	}
	ix.buildLines()
	ix.buildEdgeMeta()
	mask := uint32(mapSize - 1)
	switch fb {
	case instrument.FeedbackEdge, instrument.FeedbackPathAFL:
		for fi, f := range prog.Funcs {
			for e := range f.Edges {
				ix.add((ix.edgeBases[fi]+uint32(e))&mask, Meaning{Kind: KindEdge, Fn: fi, Edge: e, Block: -1})
			}
		}
		if fb == instrument.FeedbackPathAFL {
			ix.afTracked = instrument.PathAFLTrackedFns(prog, c)
		}
	case instrument.FeedbackBlock:
		for fi, f := range prog.Funcs {
			ix.add(ix.blockBases[fi]&mask, Meaning{Kind: KindEntry, Fn: fi, Edge: -1, Block: 0})
			for _, e := range f.Edges {
				ix.add((ix.blockBases[fi]+uint32(e.To))&mask, Meaning{Kind: KindBlock, Fn: fi, Edge: -1, Block: e.To})
			}
		}
	case instrument.FeedbackPath:
		ix.encs = make([]*balllarus.Encoding, len(prog.Funcs))
		ix.numPaths = make([]uint64, len(prog.Funcs))
		var total uint64
		for fi, f := range prog.Funcs {
			enc, err := balllarus.Encode(f)
			if err != nil {
				// The tracer falls back to a rolling hash for this
				// function; its cells are buckets, never decodable.
				ix.HashModeFns = append(ix.HashModeFns, fi)
				continue
			}
			ix.encs[fi] = enc
			ix.numPaths[fi] = enc.NumPaths
			if enc.NumPaths > EnumCapPerFn || total+enc.NumPaths > EnumCapTotal {
				ix.OverflowFns = append(ix.OverflowFns, fi)
				continue
			}
			total += enc.NumPaths
			for id := uint64(0); id < enc.NumPaths; id++ {
				cell := instrument.PathCellIndex(c, fi, id, mapSize)
				ix.add(cell, Meaning{Kind: KindPath, Fn: fi, Edge: -1, Block: -1, PathID: id})
			}
		}
	case instrument.FeedbackNGram:
		// N-gram cells are FNV-1a hashes over block-location windows:
		// nothing to enumerate; every cell resolves as a bucket.
	default:
		return nil, fmt.Errorf("covmap: no cartography for feedback %v", fb)
	}
	return ix, nil
}

func (ix *Index) add(cell uint32, m Meaning) {
	for _, have := range ix.cells[cell] {
		if have == m {
			return
		}
	}
	ix.cells[cell] = append(ix.cells[cell], m)
}

// buildLines precomputes per-block source line spans from instruction
// and terminator positions (0 when a block carries no position).
func (ix *Index) buildLines() {
	ix.lines = make([][]lineRange, len(ix.Prog.Funcs))
	for fi, f := range ix.Prog.Funcs {
		ix.lines[fi] = make([]lineRange, len(f.Blocks))
		for bi, b := range f.Blocks {
			lr := lineRange{}
			note := func(line int) {
				if line <= 0 {
					return
				}
				if lr.lo == 0 || line < lr.lo {
					lr.lo = line
				}
				if line > lr.hi {
					lr.hi = line
				}
			}
			for _, in := range b.Instrs {
				note(in.Pos.Line)
			}
			note(b.Term.Pos.Line)
			ix.lines[fi][bi] = lr
		}
	}
}

// Resolve returns every program meaning a cell can carry. The result is
// never empty for a cell the instrumented program can write: exact
// feedbacks return their indexed meanings, hashed feedbacks (and the
// hashed corners of exact ones) return explicitly-marked bucket
// meanings. A nil result means no execution of this program under this
// feedback can set the cell — the caller should report it as
// unresolvable (stale map, wrong subject, or corruption).
func (ix *Index) Resolve(cell uint32) []Meaning {
	if int(cell) >= ix.MapSize {
		return nil
	}
	ms := append([]Meaning(nil), ix.cells[cell]...)
	switch ix.Feedback {
	case instrument.FeedbackNGram:
		ms = append(ms, Meaning{Kind: KindNGram, Fn: -1, Edge: -1, Block: -1})
	case instrument.FeedbackPathAFL:
		// Segment hashes are masked to 16 bits, so every low cell is
		// also a potential bucket — an honest ambiguity.
		if cell < 1<<16 {
			ms = append(ms, Meaning{Kind: KindSegHash, Fn: -1, Edge: -1, Block: -1})
		}
	case instrument.FeedbackPath:
		// Any cell could have been written by a hash-mode function's
		// rolling hash or by an un-enumerated (overflow) function.
		if len(ix.HashModeFns) > 0 {
			ms = append(ms, Meaning{Kind: KindPathHash, Fn: -1, Edge: -1, Block: -1})
		}
		if len(ix.OverflowFns) > 0 {
			ms = append(ms, Meaning{Kind: KindPathOverflow, Fn: -1, Edge: -1, Block: -1})
		}
	}
	return ms
}

// Decode regenerates the exact basic-block sequence of a KindPath
// meaning. Errors wrapping balllarus.ErrPathOutOfRange indicate a stale
// or colliding cell rather than corruption.
func (ix *Index) Decode(m Meaning) ([]balllarus.PathStep, error) {
	if m.Kind != KindPath {
		return nil, fmt.Errorf("covmap: cannot decode %s meaning", m.Kind)
	}
	if m.Fn < 0 || m.Fn >= len(ix.encs) || ix.encs[m.Fn] == nil {
		return nil, fmt.Errorf("covmap: function %d has no path encoding", m.Fn)
	}
	return ix.encs[m.Fn].Regenerate(m.PathID)
}

// NumPaths returns the Ball-Larus path count of a function under the
// path feedback (0 when hash-mode or when the index was built for a
// different feedback).
func (ix *Index) NumPaths(fn int) uint64 {
	if ix.numPaths == nil || fn < 0 || fn >= len(ix.numPaths) {
		return 0
	}
	return ix.numPaths[fn]
}

// BlockLines returns the source line span of a block (ok=false when the
// block carries no source positions).
func (ix *Index) BlockLines(fn, block int) (lo, hi int, ok bool) {
	if fn < 0 || fn >= len(ix.lines) || block < 0 || block >= len(ix.lines[fn]) {
		return 0, 0, false
	}
	lr := ix.lines[fn][block]
	return lr.lo, lr.hi, lr.lo > 0
}

// FuncName returns the function's name ("?" out of range).
func (ix *Index) FuncName(fn int) string {
	if fn < 0 || fn >= len(ix.Prog.Funcs) {
		return "?"
	}
	return ix.Prog.Funcs[fn].Name
}

// buildEdgeMeta eagerly builds the per-function edge lookups: the
// (from,to)→edge-index map and the per-block outgoing-back-edge lists.
// Eager construction keeps the index read-only after New, so concurrent
// report renders (the live /coverage endpoint) need no locking.
func (ix *Index) buildEdgeMeta() {
	ix.edgeByPair = make([]map[int64]int, len(ix.Prog.Funcs))
	ix.backOut = make([][][]int, len(ix.Prog.Funcs))
	for fi, f := range ix.Prog.Funcs {
		m := make(map[int64]int, len(f.Edges))
		back := make([][]int, len(f.Blocks))
		for e, ed := range f.Edges {
			m[int64(ed.From)<<32|int64(ed.To)] = e
			if f.BackEdge[e] {
				back[ed.From] = append(back[ed.From], e)
			}
		}
		ix.edgeByPair[fi] = m
		ix.backOut[fi] = back
	}
}

// edgeIndex returns the index in fn.Edges of the from→to edge (-1 when
// absent).
func (ix *Index) edgeIndex(fn, from, to int) int {
	if e, ok := ix.edgeByPair[fn][int64(from)<<32|int64(to)]; ok {
		return e
	}
	return -1
}

// backEdgesFrom returns the indices of block's outgoing back edges.
func (ix *Index) backEdgesFrom(fn, block int) []int {
	if fn < 0 || fn >= len(ix.backOut) || block < 0 || block >= len(ix.backOut[fn]) {
		return nil
	}
	return ix.backOut[fn][block]
}

// String renders one meaning with its source location, e.g.
// "edge main b2→b5 (line 14)" or "path check#3 b0→b2→b4 (lines 7-12)".
func (ix *Index) String(m Meaning) string {
	switch m.Kind {
	case KindEdge:
		f := ix.Prog.Funcs[m.Fn]
		ed := f.Edges[m.Edge]
		return fmt.Sprintf("edge %s b%d→b%d%s", f.Name, ed.From, ed.To, ix.lineSuffix(m.Fn, ed.To))
	case KindEntry:
		return fmt.Sprintf("entry %s%s", ix.FuncName(m.Fn), ix.lineSuffix(m.Fn, 0))
	case KindBlock:
		return fmt.Sprintf("block %s b%d%s", ix.FuncName(m.Fn), m.Block, ix.lineSuffix(m.Fn, m.Block))
	case KindPath:
		steps, err := ix.Decode(m)
		if err != nil {
			return fmt.Sprintf("path %s#%d (decode: %v)", ix.FuncName(m.Fn), m.PathID, err)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "path %s#%d ", ix.FuncName(m.Fn), m.PathID)
		lo, hi := 0, 0
		for i, s := range steps {
			if i > 0 {
				b.WriteString("→")
			}
			if s.EnterViaBackEdge {
				b.WriteString("↺")
			}
			fmt.Fprintf(&b, "b%d", s.Block)
			if s.ExitViaBackEdge {
				b.WriteString("↺")
			}
			if l, h, ok := ix.BlockLines(m.Fn, s.Block); ok {
				if lo == 0 || l < lo {
					lo = l
				}
				if h > hi {
					hi = h
				}
			}
		}
		b.WriteString(lineText(lo, hi))
		return b.String()
	case KindPathHash:
		return fmt.Sprintf("path hash bucket (hash-mode fns: %s)", ix.fnList(ix.HashModeFns))
	case KindPathOverflow:
		return fmt.Sprintf("path bucket of un-enumerated fn (%s)", ix.fnList(ix.OverflowFns))
	case KindNGram:
		return fmt.Sprintf("ngram-%d window hash bucket", instrument.NGramDefault(ix.Config))
	case KindSegHash:
		return "pathafl segment hash bucket (16-bit)"
	}
	return m.Kind.String()
}

func (ix *Index) lineSuffix(fn, block int) string {
	lo, hi, ok := ix.BlockLines(fn, block)
	if !ok {
		return ""
	}
	return lineText(lo, hi)
}

func lineText(lo, hi int) string {
	switch {
	case lo == 0:
		return ""
	case lo == hi:
		return fmt.Sprintf(" (line %d)", lo)
	default:
		return fmt.Sprintf(" (lines %d-%d)", lo, hi)
	}
}

// CellLabel renders a one-line label for a cell: its first resolution
// plus an ambiguity count, or "unresolved" for a cell no instrumented
// execution can write. The shape makes it directly usable as a
// journal.CellResolver.
func (ix *Index) CellLabel(cell uint32) string {
	ms := ix.Resolve(cell)
	if len(ms) == 0 {
		return "unresolved"
	}
	s := ix.String(ms[0])
	if len(ms) > 1 {
		s += fmt.Sprintf(" (+%d more)", len(ms)-1)
	}
	return s
}

func (ix *Index) fnList(fns []int) string {
	if len(fns) == 0 {
		return "none"
	}
	names := make([]string, len(fns))
	for i, fn := range fns {
		names[i] = ix.FuncName(fn)
	}
	return strings.Join(names, ",")
}

// Obs is one observed cell: the index plus the hit-count buckets seen
// (AFL bucket bits; 0 when the observation source records presence
// only, e.g. first-discovered cell lists).
type Obs struct {
	Cell    uint32
	Buckets uint8
}

// FromVirgin converts a campaign's final virgin-map cells (what
// checkpoints serialize) into observations: the consumed buckets are
// the complement of the remaining virgin bits. Duplicate cells (a
// fleet's per-worker virgin maps concatenated) merge by ORing their
// observed buckets.
func FromVirgin(cells []coverage.VirginCell) []Obs {
	merged := make(map[uint32]uint8, len(cells))
	for _, c := range cells {
		merged[c.Index] |= ^c.Bits
	}
	out := make([]Obs, 0, len(merged))
	for cell, b := range merged {
		out = append(out, Obs{Cell: cell, Buckets: b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}

// FromCells converts a bare cell list (journal novelty events, corpus
// FirstCells) into presence-only observations, deduplicated and sorted.
func FromCells(cells []uint32) []Obs {
	seen := make(map[uint32]bool, len(cells))
	out := make([]Obs, 0, len(cells))
	for _, c := range cells {
		if !seen[c] {
			seen[c] = true
			out = append(out, Obs{Cell: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}
