package subjects

import "repro/internal/vm"

// jhead models a JPEG/EXIF header dumper: a marker-segment walker with
// APP1 (EXIF) tag parsing, comment extraction, orientation decoding and
// a thumbnail copier. Its bugs are intentionally shallow — the paper
// observes that every fuzzer configuration finds (nearly) all jhead
// bugs.
const jheadSrc = `
// jhead: JPEG marker walker.
// Layout: FF D8 then segments: FF marker len(1) payload[len].
// (Real JPEG uses 2-byte lengths; one byte keeps fuzzer inputs small.)

func parse_app1(input, pos, seglen) {
    // EXIF header: "Exif" 0 0 then byte order.
    if (seglen < 8) { return 0; }
    if (input[pos] != 'E' || input[pos+1] != 'x' || input[pos+2] != 'i' || input[pos+3] != 'f') {
        return 0;
    }
    var ifd = pos + 6;
    var count = input[ifd]; // BUG jh-1: ifd offset unchecked against input length
    var entries = 0;
    var i = 0;
    while (i < count && ifd + 1 + i * 4 + 3 < len(input)) {
        var tag = input[ifd + 1 + i * 4];
        var val = input[ifd + 1 + i * 4 + 1];
        if (tag == 0x12) { // orientation
            entries = entries + decode_orientation(val);
        }
        if (tag == 0x33) { // thumbnail dims packed: val = (w<<4)|h
            entries = entries + copy_thumbnail(input, ifd, val);
        }
        i = i + 1;
    }
    return entries;
}

func decode_orientation(orient) {
    var rot_table = alloc(9);
    rot_table[1] = 0; rot_table[2] = 0; rot_table[3] = 180;
    rot_table[4] = 180; rot_table[5] = 90; rot_table[6] = 90;
    rot_table[7] = 270; rot_table[8] = 270;
    var r = rot_table[orient]; // BUG jh-2: orientation byte > 8 reads OOB
    out(r);
    return 1;
}

func copy_thumbnail(input, base, dims) {
    var tw = dims >> 4;
    var th = dims & 15;
    var thumb = alloc(64);
    var n = tw * th;
    if (n > 0) {
        thumb[n - 1] = 1; // BUG jh-3: 15*15=225 > 64
        var i = 0;
        while (i < n && base + i < len(input)) {
            thumb[i] = input[base + i];
            i = i + 1;
        }
    }
    return 1;
}

func parse_comment(input, pos, seglen) {
    var buf = alloc(seglen - 2); // BUG jh-4: seglen < 2 allocates negative
    var i = 0;
    while (i < seglen - 2 && pos + i < len(input)) {
        buf[i] = input[pos + i];
        i = i + 1;
    }
    return i;
}

func parse_sos(input, pos) {
    // Scan entropy-coded data for the next marker.
    var i = pos;
    while (i < len(input)) {
        if (input[i] == 255) {
            var nxt = input[i + 1]; // BUG jh-5: i+1 unchecked at buffer end
            if (nxt != 0) { return i; }
        }
        i = i + 1;
    }
    return i;
}

func main(input) {
    if (len(input) < 4) { return 1; }
    if (input[0] != 255 || input[1] != 0xD8) { return 1; }
    var pos = 2;
    var segs = 0;
    while (pos + 3 <= len(input)) {
        if (input[pos] != 255) { return 3; }
        var marker = input[pos + 1];
        var seglen = input[pos + 2];
        pos = pos + 3;
        if (marker == 0xE1) {
            parse_app1(input, pos, seglen);
        } else if (marker == 0xFE) {
            parse_comment(input, pos, seglen);
        } else if (marker == 0xDA) {
            pos = parse_sos(input, pos);
        }
        pos = pos + seglen;
        segs = segs + 1;
    }
    return segs;
}
`

func init() {
	register(&Subject{
		Name:      "jhead",
		TypeLabel: "C",
		Source:    jheadSrc,
		Seeds: [][]byte{
			{255, 0xD8, 255, 0xE1, 12, 'E', 'x', 'i', 'f', 0, 0, 1, 1, 0x12, 1, 0, 0},
			{255, 0xD8, 255, 0xFE, 5, 'h', 'e', 'y', 255, 0xDA, 2, 0, 0},
		},
		Bugs: []Bug{
			{
				ID:       "jh-1-ifd-oob-read",
				Witness:  []byte{255, 0xD8, 255, 0xE1, 8, 'E', 'x', 'i', 'f'},
				WantKind: vm.KindOOBRead,
				WantFunc: "parse_app1",
				Comment:  "IFD offset runs past the buffer when the APP1 payload is truncated",
			},
			{
				ID:       "jh-2-orientation-oob",
				Witness:  []byte{255, 0xD8, 255, 0xE1, 12, 'E', 'x', 'i', 'f', 0, 0, 1, 0x12, 9, 0, 0},
				WantKind: vm.KindOOBRead,
				WantFunc: "decode_orientation",
				Comment:  "orientation value 9 indexes past the 9-entry rotation table",
			},
			{
				ID:       "jh-3-thumb-oob-write",
				Witness:  []byte{255, 0xD8, 255, 0xE1, 12, 'E', 'x', 'i', 'f', 0, 0, 1, 0x33, 0xFF, 0, 0},
				WantKind: vm.KindOOBWrite,
				WantFunc: "copy_thumbnail",
				Comment:  "15x15 thumbnail overflows the fixed 64-cell buffer",
			},
			{
				ID:       "jh-4-comment-bad-alloc",
				Witness:  []byte{255, 0xD8, 255, 0xFE, 1, 0, 0},
				WantKind: vm.KindBadAlloc,
				WantFunc: "parse_comment",
				Comment:  "comment segment length below the 2-byte header allocates a negative size",
			},
			{
				ID:       "jh-5-sos-oob-read",
				Witness:  []byte{255, 0xD8, 255, 0xDA, 0, 1, 255},
				WantKind: vm.KindOOBRead,
				WantFunc: "parse_sos",
				Comment:  "marker scan reads one byte past the buffer when 0xFF ends the input",
			},
		},
	})
}
