// Package strategy implements the paper's exploration-biasing drivers
// around the path-aware fuzzer:
//
//   - Baseline: a single campaign with a chosen feedback (path or the
//     pcguard edge baseline).
//   - Cull (§III-B1): round-based fuzzing where, between rounds, the
//     queue is culled to an edge-coverage-preserving minimal corpus and
//     a fresh fuzzer instance is seeded with it. Culling costs are
//     charged to the fuzzing budget, as the paper's driver does.
//   - CullRandom (Appendix D): the ablation that culls randomly,
//     removing 84-98% of the queue per round.
//   - Opportunistic (§III-B2): an edge-coverage phase builds a queue;
//     crashing inputs are stripped and the queue trimmed
//     edge-preservingly; a path-aware phase consumes the rest of the
//     budget. Only phase-two findings are credited to opp.
//
// Budgets are execution counts; every driver is deterministic given its
// options' seed.
package strategy

import (
	"math/rand"

	"repro/internal/cfg"
	"repro/internal/fuzz"
	"repro/internal/instrument"
)

// Name identifies a fuzzer configuration in the evaluation's sense.
type Name string

// The fuzzer configurations evaluated by the paper.
const (
	Path    Name = "path"    // baseline path-aware feedback
	PCGuard Name = "pcguard" // edge-coverage baseline (AFL++ default)
	Cull    Name = "cull"    // path + culling rounds
	CullR   Name = "cull_r"  // path + random culling (ablation)
	Opp     Name = "opp"     // edge phase then path phase
	PathAFL Name = "pathafl" // PathAFL-like feedback on the AFL profile
	AFL     Name = "afl"     // plain AFL profile with edge feedback
)

// AllNames lists every configuration, in the paper's reporting order.
var AllNames = []Name{Path, PCGuard, Cull, Opp, CullR, PathAFL, AFL}

// Outcome bundles a driver's results.
type Outcome struct {
	// Report is the cumulative campaign report credited to the
	// configuration.
	Report *fuzz.Report
	// Rounds counts culling rounds (1 for single-phase drivers).
	Rounds int
	// Phase1 is the edge-phase report of the opportunistic driver
	// (nil otherwise); its findings are *not* credited to opp.
	Phase1 *fuzz.Report
	// CullCost is the number of executions charged for culling.
	CullCost int64
}

// Config parameterises a driver run.
type Config struct {
	// Opts is the base fuzzer configuration; the driver overrides
	// Feedback and Profile as its strategy requires.
	Opts fuzz.Options
	// Budget is the total execution budget.
	Budget int64
	// RoundBudget is the culling round length (defaults to Budget/8,
	// the analogue of 6-hour rounds in a 48-hour run).
	RoundBudget int64
	// Seeds is the initial corpus.
	Seeds [][]byte
}

func (c Config) roundBudget() int64 {
	if c.RoundBudget > 0 {
		return c.RoundBudget
	}
	rb := c.Budget / 8
	if rb <= 0 {
		rb = c.Budget
	}
	return rb
}

// Run dispatches a named configuration.
func Run(name Name, prog *cfg.Program, cfgr Config) (*Outcome, error) {
	switch name {
	case Path:
		cfgr.Opts.Feedback = instrument.FeedbackPath
		return runSingle(prog, cfgr)
	case PCGuard:
		cfgr.Opts.Feedback = instrument.FeedbackEdge
		return runSingle(prog, cfgr)
	case Cull:
		return RunCull(prog, cfgr)
	case CullR:
		return RunCullRandom(prog, cfgr)
	case Opp:
		return RunOpportunistic(prog, cfgr)
	case PathAFL:
		cfgr.Opts.Feedback = instrument.FeedbackPathAFL
		cfgr.Opts.Profile = fuzz.ProfileAFL
		return runSingle(prog, cfgr)
	case AFL:
		cfgr.Opts.Feedback = instrument.FeedbackEdge
		cfgr.Opts.Profile = fuzz.ProfileAFL
		return runSingle(prog, cfgr)
	}
	return nil, &UnknownNameError{Name: name}
}

// SingleConfig maps a single-phase configuration name to the feedback
// and profile it runs with. ok is false for round-based drivers (cull,
// cull_r, opp, interleave), which spawn multiple fuzzer instances and
// are therefore not resumable as one durable campaign; package campaign
// uses this to decide whether a configuration supports checkpointing.
func SingleConfig(name Name) (fb instrument.Feedback, profile fuzz.Profile, ok bool) {
	switch name {
	case Path:
		return instrument.FeedbackPath, fuzz.ProfileAFLPlusPlus, true
	case PCGuard:
		return instrument.FeedbackEdge, fuzz.ProfileAFLPlusPlus, true
	case PathAFL:
		return instrument.FeedbackPathAFL, fuzz.ProfileAFL, true
	case AFL:
		return instrument.FeedbackEdge, fuzz.ProfileAFL, true
	case Path2:
		return instrument.FeedbackPath2, fuzz.ProfileAFLPlusPlus, true
	case Selective:
		return instrument.FeedbackSelective, fuzz.ProfileAFLPlusPlus, true
	}
	return 0, 0, false
}

// UnknownNameError reports an unrecognised configuration name.
type UnknownNameError struct{ Name Name }

// Error implements the error interface.
func (e *UnknownNameError) Error() string { return "strategy: unknown configuration " + string(e.Name) }

func newFuzzer(prog *cfg.Program, opts fuzz.Options, seeds [][]byte) (*fuzz.Fuzzer, error) {
	f, err := fuzz.New(prog, opts)
	if err != nil {
		return nil, err
	}
	for _, s := range seeds {
		f.AddSeed(s)
	}
	return f, nil
}

func runSingle(prog *cfg.Program, c Config) (*Outcome, error) {
	f, err := newFuzzer(prog, c.Opts, c.Seeds)
	if err != nil {
		return nil, err
	}
	f.Fuzz(c.Budget)
	return &Outcome{Report: f.Report(), Rounds: 1}, nil
}

// RunCull implements the culling driver: fixed-length rounds, each
// seeded with the edge-coverage-preserving minimal corpus of the
// previous round's queue. Culling executions are charged against the
// remaining budget, mirroring the paper's accounting.
func RunCull(prog *cfg.Program, c Config) (*Outcome, error) {
	c.Opts.Feedback = instrument.FeedbackPath
	return runRounds(prog, c, func(f *fuzz.Fuzzer, _ int64) ([][]byte, int64) {
		queue := f.QueueInputs()
		culled := fuzz.MinimizeCorpus(prog, queue, c.Opts.Entry, c.Opts.Limits)
		return culled, int64(len(queue))
	})
}

// RunCullRandom implements the Appendix D ablation: each round trims a
// uniformly random 84-98% of the queue. The per-round RNG is seeded
// deterministically from the campaign seed and round number (the paper
// seeds from the round timestamp; we need replayability).
func RunCullRandom(prog *cfg.Program, c Config) (*Outcome, error) {
	c.Opts.Feedback = instrument.FeedbackPath
	round := 0
	return runRounds(prog, c, func(f *fuzz.Fuzzer, _ int64) ([][]byte, int64) {
		round++
		rng := rand.New(rand.NewSource(c.Opts.Seed*1000003 + int64(round)))
		queue := f.QueueInputs()
		// Remove between 84% and 98% of the queue.
		removeFrac := 0.84 + rng.Float64()*0.14
		keep := len(queue) - int(float64(len(queue))*removeFrac)
		if keep < 1 {
			keep = 1
		}
		rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })
		return queue[:keep], 0 // random culling replays nothing
	})
}

// runRounds is the shared round driver. cull maps a finished round's
// fuzzer to (next-round seeds, executions charged for culling).
func runRounds(prog *cfg.Program, c Config, cull func(*fuzz.Fuzzer, int64) ([][]byte, int64)) (*Outcome, error) {
	remaining := c.Budget
	rb := c.roundBudget()
	seeds := c.Seeds
	var reports []*fuzz.Report
	var cullCost int64
	rounds := 0
	for remaining > 0 {
		budget := rb
		if budget > remaining || remaining-budget < rb/2 {
			// Last round absorbs the remainder (including what culling
			// cost subtracted), as the paper's driver does.
			budget = remaining
		}
		opts := c.Opts
		opts.Seed = c.Opts.Seed*31 + int64(rounds)
		f, err := newFuzzer(prog, opts, seeds)
		if err != nil {
			return nil, err
		}
		f.Fuzz(budget)
		rep := f.Report()
		reports = append(reports, rep)
		rounds++
		remaining -= rep.Stats.Execs
		if remaining <= 0 {
			break
		}
		next, cost := cull(f, remaining)
		cullCost += cost
		remaining -= cost
		if len(next) == 0 {
			next = seeds
		}
		seeds = next
	}
	return &Outcome{Report: fuzz.MergeReports(reports...), Rounds: rounds, CullCost: cullCost}, nil
}

// RunOpportunistic implements the opportunistic driver: half the budget
// under edge coverage, then — after stripping crashers and trimming the
// queue edge-preservingly — the other half under path feedback. The
// pre-processing replays are charged to the path phase's budget.
func RunOpportunistic(prog *cfg.Program, c Config) (*Outcome, error) {
	phase1Budget := c.Budget / 2

	edgeOpts := c.Opts
	edgeOpts.Feedback = instrument.FeedbackEdge
	f1, err := newFuzzer(prog, edgeOpts, c.Seeds)
	if err != nil {
		return nil, err
	}
	f1.Fuzz(phase1Budget)
	rep1 := f1.Report()

	queue := f1.QueueInputs()
	clean := fuzz.StripCrashers(prog, queue, c.Opts.Entry, c.Opts.Limits)
	trimmed := fuzz.MinimizeCorpus(prog, clean, c.Opts.Entry, c.Opts.Limits)
	prep := int64(len(queue) + len(clean))
	if len(trimmed) == 0 {
		trimmed = c.Seeds
	}

	pathOpts := c.Opts
	pathOpts.Feedback = instrument.FeedbackPath
	pathOpts.Seed = c.Opts.Seed*31 + 1
	f2, err := newFuzzer(prog, pathOpts, trimmed)
	if err != nil {
		return nil, err
	}
	budget2 := c.Budget - rep1.Stats.Execs - prep
	if budget2 < 0 {
		budget2 = 0
	}
	f2.Fuzz(budget2)
	return &Outcome{Report: f2.Report(), Rounds: 1, Phase1: rep1, CullCost: prep}, nil
}
