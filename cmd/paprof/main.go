// Command paprof is a standalone Ball-Larus path profiler for MiniC
// programs: it compiles a program, numbers the acyclic paths of every
// function, runs the provided inputs, and prints per-path execution
// frequencies with regenerated block sequences — the Figure 1 machinery
// as a tool.
//
// Usage:
//
//	paprof -subject flvmeta -input 'FLV...'
//	paprof -src prog.mc -input-file input.bin -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"

	"repro/internal/core"
	"repro/internal/subjects"
	"repro/internal/vm"
)

func main() {
	var (
		subjectName = flag.String("subject", "", "benchmark subject to profile")
		srcPath     = flag.String("src", "", "MiniC source file to profile")
		inputStr    = flag.String("input", "", "input bytes (literal)")
		inputFile   = flag.String("input-file", "", "file holding the input bytes")
		statsOnly   = flag.Bool("stats", false, "print per-function path statistics only")
		topN        = flag.Int("top", 20, "show the N hottest paths")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile at exit to this file")
		tracePath   = flag.String("trace", "", "write a runtime execution trace of the run to this file (inspect with go tool trace)")
	)
	flag.Parse()

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("trace: %v", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fatalf("trace: %v", err)
		}
		defer trace.Stop()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	var target *core.Target
	switch {
	case *subjectName != "":
		sub := subjects.Get(*subjectName)
		if sub == nil {
			fatalf("unknown subject %q", *subjectName)
		}
		prog, err := sub.Program()
		if err != nil {
			fatalf("%v", err)
		}
		target = core.FromProgram(prog)
	case *srcPath != "":
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			fatalf("%v", err)
		}
		target, err = core.Compile(string(src))
		if err != nil {
			fatalf("compile: %v", err)
		}
	default:
		fatalf("one of -subject or -src is required")
	}

	fmt.Println("function            blocks edges back  acyclic-paths probes(naive/opt)")
	for _, ps := range target.PathReport() {
		if ps.HashedFallback {
			fmt.Printf("%-20s %5d %5d %4d  (hash fallback: too many paths)\n",
				ps.Func, ps.Blocks, ps.Edges, ps.BackEdges)
			continue
		}
		fmt.Printf("%-20s %5d %5d %4d  %12d  %d/%d\n",
			ps.Func, ps.Blocks, ps.Edges, ps.BackEdges, ps.NumPaths,
			ps.ProbesNaive, ps.ProbesOptimal)
	}
	if *statsOnly {
		return
	}

	var input []byte
	switch {
	case *inputFile != "":
		b, err := os.ReadFile(*inputFile)
		if err != nil {
			fatalf("%v", err)
		}
		input = b
	default:
		input = []byte(*inputStr)
	}

	prof, err := target.PathProfiler()
	if err != nil {
		fatalf("%v", err)
	}
	res := prof.Profile("main", input, vm.DefaultLimits())
	fmt.Printf("\nexecution: status=%v steps=%d ret=%d\n", res.Status, res.Steps, res.Ret)
	if res.Crash != nil {
		fmt.Printf("crash: %s\n", res.Crash)
	}
	fmt.Printf("\nhottest acyclic paths:\n")
	for i, pc := range prof.Counts() {
		if i >= *topN {
			break
		}
		var blocks []string
		for _, s := range pc.Blocks {
			b := fmt.Sprintf("b%d", s.Block)
			if s.EnterViaBackEdge {
				b = "↺" + b
			}
			if s.ExitViaBackEdge {
				b += "↺"
			}
			blocks = append(blocks, b)
		}
		fmt.Printf("  %-16s path %-6d x%-6d  %s\n", pc.Func, pc.PathID, pc.Count, strings.Join(blocks, "→"))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paprof: "+format+"\n", args...)
	os.Exit(1)
}
