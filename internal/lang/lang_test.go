package lang_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/langgen"
)

func TestLexBasics(t *testing.T) {
	toks, errs := lang.LexAll(`func f(a) { var x = 0x2A + 'h'; return x << 2; } // tail`)
	if len(errs) > 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	var kinds []lang.Kind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []lang.Kind{
		lang.FUNC, lang.IDENT, lang.LPAREN, lang.IDENT, lang.RPAREN, lang.LBRACE,
		lang.VAR, lang.IDENT, lang.ASSIGN, lang.INT, lang.PLUS, lang.INT, lang.SEMI,
		lang.RETURN, lang.IDENT, lang.SHL, lang.INT, lang.SEMI,
		lang.RBRACE, lang.EOF,
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
}

func TestLexValues(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"42", 42},
		{"0x2a", 42},
		{"0", 0},
		{"'h'", 104},
		{`'\n'`, 10},
		{`'\0'`, 0},
		{`'\\'`, 92},
	}
	for _, c := range cases {
		toks, errs := lang.LexAll(c.src)
		if len(errs) > 0 {
			t.Errorf("%q: errors %v", c.src, errs)
			continue
		}
		if toks[0].Kind != lang.INT || toks[0].Val != c.want {
			t.Errorf("%q: got %v (val %d), want INT %d", c.src, toks[0].Kind, toks[0].Val, c.want)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, errs := lang.LexAll(`"hi\n\"x\""`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != lang.STR || toks[0].Text != "hi\n\"x\"" {
		t.Errorf("got %v %q", toks[0].Kind, toks[0].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"'unterminated",
		`"unterminated`,
		"@",
		"/* open comment",
		"'ab'",
	} {
		_, errs := lang.LexAll(src)
		if len(errs) == 0 {
			t.Errorf("%q: expected a lex error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := lang.LexAll("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestParseBasics(t *testing.T) {
	prog, err := lang.Parse(`
func add(a, b) { return a + b; }
func main(input) {
    var s = 0;
    for (var i = 0; i < len(input); i = i + 1) {
        if (input[i] > 64 && input[i] < 91) { s = s + 1; } else { s = s - 1; }
    }
    while (s > 100) { s = s / 2; }
    return add(s, 1);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("parsed %d funcs", len(prog.Funcs))
	}
	if prog.Func("add") == nil || prog.Func("main") == nil {
		t.Error("function lookup failed")
	}
	if got := len(prog.Func("main").Params); got != 1 {
		t.Errorf("main params = %d", got)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := lang.Parse(`func main(input) { return 1 + 2 * 3 == 7 && 4 < 5; }`)
	if err != nil {
		t.Fatal(err)
	}
	// ((1 + (2*3)) == 7) && (4 < 5)
	ret := prog.Func("main").Body.Stmts[0].(*lang.ReturnStmt)
	top, ok := ret.Val.(*lang.BinaryExpr)
	if !ok || top.Op != lang.LAND {
		t.Fatalf("top op = %v", ret.Val)
	}
	eq, ok := top.X.(*lang.BinaryExpr)
	if !ok || eq.Op != lang.EQ {
		t.Fatalf("left of && = %#v", top.X)
	}
	add, ok := eq.X.(*lang.BinaryExpr)
	if !ok || add.Op != lang.PLUS {
		t.Fatalf("left of == = %#v", eq.X)
	}
	if mul, ok := add.Y.(*lang.BinaryExpr); !ok || mul.Op != lang.STAR {
		t.Fatalf("right of + = %#v", add.Y)
	}
}

func TestParseElseIf(t *testing.T) {
	prog, err := lang.Parse(`func main(input) {
        if (1) { return 1; } else if (2) { return 2; } else { return 3; }
    }`)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Func("main").Body.Stmts[0].(*lang.IfStmt)
	if _, ok := ifs.Else.(*lang.IfStmt); !ok {
		t.Errorf("else-if chain not nested: %#v", ifs.Else)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"func main(input) { return 0 }",    // missing semicolon
		"func main(input) { if 1 { } }",    // missing parens
		"func main(input) { var = 3; }",    // missing name
		"func main(input) { x = ; }",       // missing expr
		"garbage",                          // not a function
		"func main(input) { return 0; ",    // unclosed brace
		"func main(input) { a[1; }",        // unclosed index
		"func main(input) { for (;;) { } ", // unclosed
	} {
		if _, err := lang.Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseRecoversAndReportsMultiple(t *testing.T) {
	_, err := lang.Parse(`
func main(input) {
    var x = ;
    var y = ;
    return 0;
}`)
	if err == nil {
		t.Fatal("expected errors")
	}
	if n := strings.Count(err.Error(), "expected expression"); n < 2 {
		t.Errorf("expected >=2 diagnostics, got: %v", err)
	}
}

func TestPrintRoundTripFixed(t *testing.T) {
	src := `
func helper(a, b) { return a * b - 2; }
func main(input) {
    var s = "bytes\n";
    var n = 0;
    for (var i = 0; i < len(input); i = i + 1) {
        if (input[i] == 'x' || input[i] == 'y') { n = n + 1; }
        else { n = n - helper(i, 2); }
    }
    while (n > 0 && n < 100) { n = n - 3; }
    input[0] = n;
    out(s[0]);
    return n;
}`
	roundTrip(t, src)
}

// roundTrip checks Print(Parse(src)) reparses to an identical printing
// (print-normal-form fixpoint).
func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse 1: %v", err)
	}
	out1 := lang.Print(p1)
	p2, err := lang.Parse(out1)
	if err != nil {
		t.Fatalf("parse 2: %v\nprinted:\n%s", err, out1)
	}
	out2 := lang.Print(p2)
	if out1 != out2 {
		t.Errorf("printer not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
}

func TestPrintRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := langgen.Generate(rng, langgen.Default())
		p1, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, src)
		}
		out1 := lang.Print(p1)
		p2, err := lang.Parse(out1)
		if err != nil {
			t.Fatalf("seed %d: printed program does not parse: %v\n%s", seed, err, out1)
		}
		if out2 := lang.Print(p2); out1 != out2 {
			t.Fatalf("seed %d: printer not a fixpoint", seed)
		}
	}
}

func TestTokenStrings(t *testing.T) {
	if lang.SHL.String() != "<<" || lang.FUNC.String() != "func" {
		t.Error("kind names wrong")
	}
	if s := (lang.Pos{Line: 3, Col: 7}).String(); s != "3:7" {
		t.Errorf("pos = %s", s)
	}
	if !(lang.Pos{Line: 1, Col: 1}).IsValid() || (lang.Pos{}).IsValid() {
		t.Error("IsValid wrong")
	}
}
