// Package langgen generates random, well-formed MiniC programs for
// property-based testing: parser/printer round-trips, CFG invariants,
// Ball-Larus plan equivalence, and VM determinism are all checked
// against its output.
//
// Generated programs always type-check and always terminate (loops are
// bounded by construction), so failures in downstream packages point at
// real defects rather than generator noise.
package langgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds program shape.
type Config struct {
	// MaxFuncs caps extra (non-main) functions.
	MaxFuncs int
	// MaxStmts caps statements per block.
	MaxStmts int
	// MaxDepth caps statement nesting.
	MaxDepth int
	// MaxExprDepth caps expression nesting.
	MaxExprDepth int
}

// Default returns the configuration used by the test suites.
func Default() Config {
	return Config{MaxFuncs: 3, MaxStmts: 5, MaxDepth: 3, MaxExprDepth: 3}
}

type gen struct {
	rng  *rand.Rand
	cfg  Config
	b    strings.Builder
	vars []string
	// funcs lists generated helper functions with their arities.
	funcs   []string
	nameSeq int
	// inHelper suppresses input-array references (helpers take only
	// scalar parameters).
	inHelper bool
}

// Program generates a random MiniC program containing a main(input)
// function. The same rng state always yields the same program.
func Program(rng *rand.Rand, cfg Config) string {
	g := &gen{rng: rng, cfg: cfg}
	nFuncs := rng.Intn(cfg.MaxFuncs + 1)
	for i := 0; i < nFuncs; i++ {
		g.genHelper(i)
	}
	g.genMain()
	return g.b.String()
}

func (g *gen) fresh(prefix string) string {
	g.nameSeq++
	return fmt.Sprintf("%s%d", prefix, g.nameSeq)
}

func (g *gen) genHelper(i int) {
	name := fmt.Sprintf("helper%d", i)
	g.vars = []string{"a", "b"}
	g.inHelper = true
	fmt.Fprintf(&g.b, "func %s(a, b) {\n", name)
	g.genStmts(1, g.cfg.MaxDepth)
	// Helpers must terminate and may not call other helpers (avoiding
	// accidental recursion): the helper list grows only after the body
	// is generated, and expressions inside use only scalars/builtins.
	fmt.Fprintf(&g.b, "    return a + b;\n}\n")
	g.inHelper = false
	g.funcs = append(g.funcs, name)
}

func (g *gen) genMain() {
	g.vars = []string{"input"}
	g.b.WriteString("func main(input) {\n")
	g.vars = append(g.vars, "acc")
	g.b.WriteString("    var acc = 0;\n")
	g.genStmts(1, g.cfg.MaxDepth)
	g.b.WriteString("    return acc;\n}\n")
}

func (g *gen) indent(depth int) {
	for i := 0; i < depth; i++ {
		g.b.WriteString("    ")
	}
}

// genStmts generates a block's statement list. Variables declared
// inside go out of scope when the block closes, mirroring MiniC's
// block scoping, so later statements never reference dead names.
func (g *gen) genStmts(depth, budget int) {
	save := len(g.vars)
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.genStmt(depth, budget)
	}
	g.vars = g.vars[:save]
}

// scalarVar picks an int-valued variable (never "input", which holds an
// array handle).
func (g *gen) scalarVar() string {
	for tries := 0; tries < 8; tries++ {
		v := g.vars[g.rng.Intn(len(g.vars))]
		if v != "input" {
			return v
		}
	}
	return "acc"
}

func (g *gen) genStmt(depth, budget int) {
	choice := g.rng.Intn(10)
	if budget <= 0 && choice >= 5 {
		choice = g.rng.Intn(5) // only non-nesting statements
	}
	switch choice {
	case 0, 1: // var decl
		name := g.fresh("v")
		g.indent(depth)
		fmt.Fprintf(&g.b, "var %s = %s;\n", name, g.expr(g.cfg.MaxExprDepth))
		g.vars = append(g.vars, name)
	case 2, 3, 4: // assignment
		g.indent(depth)
		fmt.Fprintf(&g.b, "%s = %s;\n", g.scalarVar(), g.expr(g.cfg.MaxExprDepth))
	case 5, 6: // if / if-else
		g.indent(depth)
		fmt.Fprintf(&g.b, "if (%s) {\n", g.expr(2))
		g.genStmts(depth+1, budget-1)
		g.indent(depth)
		if g.rng.Intn(2) == 0 {
			g.b.WriteString("} else {\n")
			g.genStmts(depth+1, budget-1)
			g.indent(depth)
		}
		g.b.WriteString("}\n")
	case 7: // bounded for loop
		// The counter is deliberately NOT added to the assignable
		// variable pool: a generated body that reassigned it could
		// make the loop diverge, and generated programs must
		// terminate by construction.
		iv := g.fresh("i")
		g.indent(depth)
		fmt.Fprintf(&g.b, "for (var %s = 0; %s < %d; %s = %s + 1) {\n",
			iv, iv, 1+g.rng.Intn(6), iv, iv)
		g.genStmts(depth+1, budget-1)
		g.indent(depth)
		g.b.WriteString("}\n")
	case 8: // bounded while over the input (main only)
		if g.inHelper {
			g.indent(depth)
			fmt.Fprintf(&g.b, "%s = %s;\n", g.scalarVar(), g.expr(2))
			return
		}
		// As with for-loops, the counter stays out of the assignable
		// pool so the loop always terminates.
		iv := g.fresh("w")
		g.indent(depth)
		fmt.Fprintf(&g.b, "var %s = 0;\n", iv)
		g.indent(depth)
		fmt.Fprintf(&g.b, "while (%s < min(len(input), %d)) {\n", iv, 2+g.rng.Intn(8))
		g.genStmts(depth+1, budget-1)
		g.indent(depth + 1)
		fmt.Fprintf(&g.b, "%s = %s + 1;\n", iv, iv)
		g.indent(depth)
		g.b.WriteString("}\n")
	case 9: // out()
		g.indent(depth)
		fmt.Fprintf(&g.b, "out(%s);\n", g.expr(2))
	}
}

// expr generates a crash-free integer expression (divisions use a
// guarded form, loads are bounds-safe by construction).
func (g *gen) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.rng.Intn(9) {
	case 0, 1:
		return g.atom()
	case 2:
		op := []string{"+", "-", "*", "&", "|", "^"}[g.rng.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case 3:
		op := []string{"==", "!=", "<", "<=", ">", ">="}[g.rng.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case 4:
		op := []string{"&&", "||"}[g.rng.Intn(2)]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case 5:
		// Guarded division: divisor is |x|+1, never zero.
		return fmt.Sprintf("(%s / (abs(%s) + 1))", g.expr(depth-1), g.expr(depth-1))
	case 6:
		// Bounds-safe input load (main only; helpers have no array).
		if g.inHelper {
			return g.atom()
		}
		return fmt.Sprintf("safe_load(input, %s)", g.expr(depth-1))
	case 7:
		if len(g.funcs) > 0 {
			f := g.funcs[g.rng.Intn(len(g.funcs))]
			return fmt.Sprintf("%s(%s, %s)", f, g.expr(depth-1), g.expr(depth-1))
		}
		return g.atom()
	default:
		un := []string{"-", "!", "~"}[g.rng.Intn(3)]
		return fmt.Sprintf("%s(%s)", un, g.expr(depth-1))
	}
}

func (g *gen) atom() string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(256))
	case 1:
		if g.inHelper {
			return g.scalarVar()
		}
		return "len(input)"
	default:
		return g.scalarVar()
	}
}

// Prelude returns the helper functions every generated program relies
// on (safe_load guards array accesses). Program output already includes
// calls to it; callers concatenate Prelude() + Program().
func Prelude() string {
	return `
func safe_load(arr, i) {
    var n = len(arr);
    if (n == 0) { return 0; }
    var j = i % n;
    if (j < 0) { j = j + n; }
    return arr[j];
}
`
}

// Generate returns a complete compilable source (prelude + program).
func Generate(rng *rand.Rand, cfg Config) string {
	return Prelude() + Program(rng, cfg)
}
