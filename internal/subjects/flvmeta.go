package subjects

import "repro/internal/vm"

// flvmeta models an FLV metadata extractor: a tag-stream walker that
// accumulates audio/video metadata and renders a script-data summary.
// Its second bug is path-dependent in the Fig. 1 sense: the summary
// index is computed from state that only specific audio- and video-tag
// parsing paths establish.
const flvmetaSrc = `
// flvmeta: FLV tag stream walker.
// Layout: "FLV" ver(1) flags(1) then tags: type(1) size(1) payload[size].
// Tag types: 8=audio 9=video 18=script-data.

func parse_audio(input, pos, size, meta) {
    if (pos < len(input)) {
        var flags = input[pos];
        // Stereo AAC at 44kHz: sound format 2, stereo bit set.
        if ((flags & 1) == 1 && (flags >> 4) == 2) {
            meta[0] = 1;
        } else {
            meta[0] = 0;
        }
    }
    return 0;
}

func parse_video(input, pos, size, meta) {
    if (pos < len(input)) {
        var f = input[pos];
        if ((f >> 4) == 1) {
            // Keyframe: remember the richest summary layout.
            meta[1] = 3;
        } else if ((f >> 4) == 2) {
            meta[1] = 1;
        }
    }
    return 0;
}

func parse_script(input, pos, size, meta, table) {
    if (size >= 2) {
        // Trailing AMF end marker byte.
        var last = input[pos + size - 1]; // BUG flv-1: size unchecked against input
        var idx = meta[0] * 2 + meta[1];
        table[idx] = last; // BUG flv-2: idx reaches 5 on the stereo+keyframe paths
        out(table[idx]);
    }
    return 0;
}

func main(input) {
    if (len(input) < 5) { return 1; }
    if (input[0] != 'F' || input[1] != 'L' || input[2] != 'V') { return 1; }
    if (input[3] != 1) { return 2; }
    var meta = alloc(2);
    var table = alloc(4);
    var tags = 0;
    var pos = 5;
    while (pos + 2 <= len(input)) {
        var t = input[pos];
        var size = input[pos + 1];
        pos = pos + 2;
        if (t == 8) {
            parse_audio(input, pos, size, meta);
        } else if (t == 9) {
            parse_video(input, pos, size, meta);
        } else if (t == 18) {
            parse_script(input, pos, size, meta, table);
        }
        pos = pos + size;
        tags = tags + 1;
    }
    return tags;
}
`

func init() {
	register(&Subject{
		Name:      "flvmeta",
		TypeLabel: "C",
		Source:    flvmetaSrc,
		Seeds: [][]byte{
			{'F', 'L', 'V', 1, 0, 8, 1, 0x05, 9, 1, 0x20, 18, 3, 'a', 'b', 'c'},
			{'F', 'L', 'V', 1, 0, 18, 2, 1, 2},
		},
		Bugs: []Bug{
			{
				ID:       "flv-1-script-oob-read",
				Witness:  []byte{'F', 'L', 'V', 1, 0, 18, 200},
				WantKind: vm.KindOOBRead,
				WantFunc: "parse_script",
				Comment:  "script tag size runs past the end of the input buffer",
			},
			{
				ID:            "flv-2-summary-oob-write",
				Witness:       []byte{'F', 'L', 'V', 1, 0, 8, 1, 0x21, 9, 1, 0x10, 18, 2, 0, 0},
				WantKind:      vm.KindOOBWrite,
				WantFunc:      "parse_script",
				PathDependent: true,
				Comment: "summary index meta[0]*2+meta[1] = 5 overflows the 4-slot table, but " +
					"only when the stereo-AAC audio path AND the keyframe video path both ran",
			},
		},
	})
}
